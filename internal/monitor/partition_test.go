package monitor

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
)

func TestPartitionEmpty(t *testing.T) {
	pt := NewPartition(5)
	if pt.S1() != 0 {
		t.Fatalf("S1 = %d, want 0", pt.S1())
	}
	if pt.D1() != 0 {
		t.Fatalf("D1 = %d, want 0", pt.D1())
	}
	if pt.Coverage() != 0 {
		t.Fatalf("Coverage = %d, want 0", pt.Coverage())
	}
	if pt.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d, want 1", pt.NumGroups())
	}
}

func TestPartitionZeroNodes(t *testing.T) {
	pt := NewPartition(0)
	if pt.S1() != 0 || pt.D1() != 0 || pt.NumGroups() != 0 {
		t.Fatal("degenerate partition should be all zeros")
	}
	deg := pt.Degrees()
	if len(deg) != 1 || deg[0] != 0 {
		t.Fatalf("Degrees = %v", deg)
	}
}

func TestPartitionRefineSplits(t *testing.T) {
	pt := NewPartition(4)
	pt.Refine([]*bitset.Set{bitset.FromIndices(4, 0, 1)})
	want := [][]int{{0, 1}, {2, 3}}
	if got := pt.Groups(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Groups = %v, want %v", got, want)
	}
	pt.Refine([]*bitset.Set{bitset.FromIndices(4, 1, 2)})
	want = [][]int{{0}, {1}, {2}, {3}}
	if got := pt.Groups(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Groups = %v, want %v", got, want)
	}
	// Node 3 is uncovered, so S1 counts only 0, 1, 2.
	if got := pt.S1(); got != 3 {
		t.Fatalf("S1 = %d, want 3", got)
	}
}

func TestPartitionRefineEmptyNoop(t *testing.T) {
	pt := NewPartition(4)
	pt.Refine(nil)
	if pt.NumGroups() != 1 {
		t.Fatal("Refine(nil) should be a no-op")
	}
}

func TestPartitionRefineUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPartition(4).Refine([]*bitset.Set{bitset.New(5)})
}

func TestPartitionMatchesEquivalenceGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(12)
		ps := randomPathSet(rng, n, rng.Intn(8), 5)
		q := NewEquivalenceGraph(ps)
		pt := NewPartitionFromPaths(ps)
		if q.S1() != pt.S1() {
			t.Fatalf("trial %d: S1 %d != %d\npaths=%v", trial, q.S1(), pt.S1(), dumpPaths(ps))
		}
		if q.D1() != pt.D1() {
			t.Fatalf("trial %d: D1 %d != %d\npaths=%v", trial, q.D1(), pt.D1(), dumpPaths(ps))
		}
		// Degrees must agree node by node (v0 = index n).
		qd := make([]int, n+1)
		for v := 0; v <= n; v++ {
			qd[v] = q.Degree(v)
		}
		if pd := pt.Degrees(); !reflect.DeepEqual(qd, pd) {
			t.Fatalf("trial %d: degrees %v != %v", trial, qd, pd)
		}
	}
}

func TestPartitionMatchesGeneralKAtK1(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		ps := randomPathSet(rng, n, rng.Intn(6), 4)
		pt := NewPartitionFromPaths(ps)
		if got, want := pt.S1(), IdentifiabilityK(ps, 1); got != want {
			t.Fatalf("trial %d: S1 partition %d != enumeration %d", trial, got, want)
		}
		if got, want := pt.D1(), DistinguishabilityK(ps, 1); got != want {
			t.Fatalf("trial %d: D1 partition %d != enumeration %d", trial, got, want)
		}
	}
}

func TestPartitionIncrementalEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		ps := randomPathSet(rng, n, 1+rng.Intn(7), 4)
		batch := NewPartitionFromPaths(ps)
		inc := NewPartition(n)
		for i := 0; i < ps.Len(); i++ {
			inc.Refine([]*bitset.Set{ps.Path(i)})
		}
		if batch.S1() != inc.S1() || batch.D1() != inc.D1() || batch.Coverage() != inc.Coverage() {
			t.Fatalf("trial %d: incremental refinement diverges", trial)
		}
	}
}

func TestPartitionCloneIndependent(t *testing.T) {
	pt := NewPartition(4)
	pt.Refine([]*bitset.Set{bitset.FromIndices(4, 0)})
	c := pt.Clone()
	c.Refine([]*bitset.Set{bitset.FromIndices(4, 1)})
	if pt.Coverage() != 1 {
		t.Fatal("clone refinement must not affect original")
	}
	if c.Coverage() != 2 {
		t.Fatal("clone should see its own refinement")
	}
}

func TestPartitionManyPathsStringKeys(t *testing.T) {
	// Refining with > 64 paths at once exercises the string-key fallback.
	n := 80
	paths := make([]*bitset.Set, 70)
	for i := range paths {
		paths[i] = bitset.FromIndices(n, i, i+1)
	}
	pt := NewPartition(n)
	pt.Refine(paths)

	inc := NewPartition(n)
	for _, p := range paths {
		inc.Refine([]*bitset.Set{p})
	}
	if pt.S1() != inc.S1() || pt.D1() != inc.D1() {
		t.Fatalf("string-key path: bulk (S1=%d D1=%d) != incremental (S1=%d D1=%d)",
			pt.S1(), pt.D1(), inc.S1(), inc.D1())
	}
}

func TestPartitionDegreesV0(t *testing.T) {
	pt := NewPartition(4)
	pt.Refine([]*bitset.Set{bitset.FromIndices(4, 0, 1)})
	deg := pt.Degrees()
	// Class {0,1}: degree 1. Class {2,3,v0}: degree 2 each.
	want := []int{1, 1, 2, 2, 2}
	if !reflect.DeepEqual(deg, want) {
		t.Fatalf("Degrees = %v, want %v", deg, want)
	}
}

func TestPartitionString(t *testing.T) {
	pt := NewPartition(3)
	pt.Refine([]*bitset.Set{bitset.FromIndices(3, 0)})
	if got := pt.String(); got != "partition{[0] [1,2]}" {
		t.Fatalf("String = %q", got)
	}
}

func dumpPaths(ps *PathSet) [][]int {
	out := make([][]int, ps.Len())
	for i := range out {
		out[i] = ps.Path(i).Indices()
	}
	return out
}
