package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/combinat"
)

// fig3PathSet returns the paths of the paper's Fig. 3 counterexample:
// nodes v1, v2, v3 = 0, 1, 2; p0 = {v2}, p1 = {v1, v2}, p2 = {v2, v3}.
// which selects from the three possible paths.
func fig3PathSet(t *testing.T, include ...int) *PathSet {
	t.Helper()
	all := [][]int{{1}, {0, 1}, {1, 2}}
	paths := make([][]int, 0, len(include))
	for _, i := range include {
		paths = append(paths, all[i])
	}
	return mkPathSet(t, 3, paths...)
}

func TestFig3IdentifiabilityValues(t *testing.T) {
	cases := []struct {
		name    string
		include []int
		wantS1  int
	}{
		{"empty", nil, 0},
		{"p0", []int{0}, 1},
		{"p1", []int{1}, 0},
		{"p0p1", []int{0, 1}, 2},
		{"p1p2", []int{1, 2}, 3},
		{"p0p1p2", []int{0, 1, 2}, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ps := fig3PathSet(t, c.include...)
			if got := IdentifiabilityK(ps, 1); got != c.wantS1 {
				t.Fatalf("S1 = %d, want %d", got, c.wantS1)
			}
		})
	}
}

func TestFig3SubmodularityViolation(t *testing.T) {
	// Proposition 15's counterexample: the marginal gain of p0 grows when
	// p1 is already present (1 → 2), violating diminishing returns.
	gainEmpty := IdentifiabilityK(fig3PathSet(t, 0), 1) - IdentifiabilityK(fig3PathSet(t), 1)
	gainAfterP1 := IdentifiabilityK(fig3PathSet(t, 0, 1), 1) - IdentifiabilityK(fig3PathSet(t, 1), 1)
	gainAfterP1P2 := IdentifiabilityK(fig3PathSet(t, 0, 1, 2), 1) - IdentifiabilityK(fig3PathSet(t, 1, 2), 1)
	if gainEmpty != 1 || gainAfterP1 != 2 || gainAfterP1P2 != 0 {
		t.Fatalf("gains = %d, %d, %d; want 1, 2, 0", gainEmpty, gainAfterP1, gainAfterP1P2)
	}
	if gainAfterP1 <= gainEmpty {
		t.Fatal("expected the submodularity violation of Proposition 15")
	}
}

func TestDistinguishabilityKEmptyAndNegative(t *testing.T) {
	ps := NewPathSet(3)
	if got := DistinguishabilityK(ps, -1); got != 0 {
		t.Fatalf("k<0: %d", got)
	}
	// No paths: all failure sets share the empty signature → D_k = 0.
	if got := DistinguishabilityK(ps, 2); got != 0 {
		t.Fatalf("no paths: D2 = %d, want 0", got)
	}
}

func TestDistinguishabilityKFullSeparation(t *testing.T) {
	// One singleton path per node: every failure set has a distinct
	// signature, so D_k = C(|F_k|, 2).
	ps := mkPathSet(t, 3, []int{0}, []int{1}, []int{2})
	for k := 0; k <= 3; k++ {
		m := combinat.NumFailureSets(3, k)
		if got := DistinguishabilityK(ps, k); got != combinat.Pairs(m) {
			t.Fatalf("k=%d: D = %d, want %d", k, got, combinat.Pairs(m))
		}
	}
}

func TestIdentifiabilityKDecreasesInK(t *testing.T) {
	// S_{k+1} ⊆ S_k (larger failure budgets are harder).
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(7)
		ps := randomPathSet(rng, n, rng.Intn(6), 4)
		prev := IdentifiabilityK(ps, 1)
		for k := 2; k <= 3; k++ {
			cur := IdentifiabilityK(ps, k)
			if cur > prev {
				t.Fatalf("trial %d: S_%d = %d > S_%d = %d", trial, k, cur, k-1, prev)
			}
			prev = cur
		}
	}
}

func TestIdentifiableNodesKSetMembership(t *testing.T) {
	// Line paths: p = {0,1}: neither 0 nor 1 is 1-identifiable; with
	// q = {1} added, both become 1-identifiable.
	ps := mkPathSet(t, 2, []int{0, 1})
	if got := IdentifiableNodesK(ps, 1); !got.Empty() {
		t.Fatalf("S_1 = %v, want empty", got)
	}
	ps2 := mkPathSet(t, 2, []int{0, 1}, []int{1})
	got := IdentifiableNodesK(ps2, 1)
	if !got.Contains(0) || !got.Contains(1) {
		t.Fatalf("S_1 = %v, want {0, 1}", got)
	}
}

func TestUncertaintyK(t *testing.T) {
	// Path {0,1} over 3 nodes, k=1. Hypotheses: ∅,{0},{1},{2}.
	// Signatures: ∅→∅, {0}→{p}, {1}→{p}, {2}→∅.
	ps := mkPathSet(t, 3, []int{0, 1})
	cases := []struct {
		f    []int
		want int64
	}{
		{nil, 1},      // ∅ collides with {2}
		{[]int{0}, 1}, // {0} collides with {1}
		{[]int{2}, 1}, // {2} collides with ∅
	}
	for _, c := range cases {
		got, err := UncertaintyK(ps, 1, c.f)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("I_1(%v) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestUncertaintyKErrors(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0})
	if _, err := UncertaintyK(ps, 1, []int{0, 1}); err == nil {
		t.Fatal("|F| > k should error")
	}
	if _, err := UncertaintyK(ps, 1, []int{9}); err == nil {
		t.Fatal("out-of-range node should error")
	}
}

// Lemma 3: average uncertainty = (2/|F_k|)(C(|F_k|,2) − |D_k(P)|).
func TestLemma3Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		ps := randomPathSet(rng, n, rng.Intn(5), 4)
		for k := 1; k <= 2; k++ {
			m := combinat.NumFailureSets(n, k)
			direct := AverageUncertaintyK(ps, k)
			viaD := 2 / float64(m) * float64(combinat.Pairs(m)-DistinguishabilityK(ps, k))
			if diff := direct - viaD; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d k=%d: direct %v != via D_k %v", trial, k, direct, viaD)
			}
		}
	}
}

func TestAverageUncertaintyEmptyUniverse(t *testing.T) {
	ps := NewPathSet(0)
	if got := AverageUncertaintyK(ps, 1); got != 0 {
		t.Fatalf("got %v, want 0", got)
	}
}

func TestIdentifiableFailureSetsK(t *testing.T) {
	// Full separation: every failure set unique.
	ps := mkPathSet(t, 2, []int{0}, []int{1})
	if got := IdentifiableFailureSetsK(ps, 2); got != 4 {
		t.Fatalf("got %d, want 4 (∅,{0},{1},{0,1})", got)
	}
	// Single shared path: ∅ unique among... signatures: ∅→{}, {0}→{p},
	// {1}→{p}, {0,1}→{p}: only ∅ has a unique signature.
	ps2 := mkPathSet(t, 2, []int{0, 1})
	if got := IdentifiableFailureSetsK(ps2, 2); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

func TestDistinguishabilityMonotoneInPaths(t *testing.T) {
	// Lemma 17's monotonicity: adding a path never decreases D_k.
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		full := randomPathSet(rng, n, 1+rng.Intn(5), 4)
		for k := 1; k <= 2; k++ {
			prev := int64(-1)
			partial := NewPathSet(n)
			for i := 0; i < full.Len(); i++ {
				if err := partial.Add(full.Path(i)); err != nil {
					t.Fatal(err)
				}
				cur := DistinguishabilityK(partial, k)
				if cur < prev {
					t.Fatalf("trial %d: D_%d decreased from %d to %d", trial, k, prev, cur)
				}
				prev = cur
			}
		}
	}
}
