package monitor

import (
	"math/rand"
	"testing"
)

func TestMaxIdentifiabilityUncovered(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0})
	if got := MaxIdentifiability(ps, 1); got != 0 {
		t.Fatalf("uncovered node: %d, want 0", got)
	}
	if got := MaxIdentifiability(ps, -1); got != 0 {
		t.Fatalf("out of range: %d, want 0", got)
	}
	if got := MaxIdentifiability(ps, 9); got != 0 {
		t.Fatalf("out of range: %d, want 0", got)
	}
}

func TestMaxIdentifiabilitySingletonPath(t *testing.T) {
	// Path {0} over 2 nodes: no other node can mask node 0, so 0 is
	// k-identifiable for every k → capped at n.
	ps := mkPathSet(t, 2, []int{0})
	if got := MaxIdentifiability(ps, 0); got != 2 {
		t.Fatalf("got %d, want 2 (cap)", got)
	}
}

func TestMaxIdentifiabilitySharedPath(t *testing.T) {
	// Path {0,1}: neither endpoint is even 1-identifiable ({0} vs {1}
	// collide).
	ps := mkPathSet(t, 2, []int{0, 1})
	if got := MaxIdentifiability(ps, 0); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}

func TestMaxIdentifiabilityMonotoneConsistency(t *testing.T) {
	// MaxIdentifiability(v) = k means v ∈ S_j for j ≤ k and v ∉ S_{k+1}
	// (unless capped).
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		ps := randomPathSet(rng, n, 1+rng.Intn(4), 3)
		for v := 0; v < n; v++ {
			k := MaxIdentifiability(ps, v)
			if k > 0 && !IdentifiableNodesK(ps, k).Contains(v) {
				t.Fatalf("trial %d node %d: claimed %d-identifiable but is not", trial, v, k)
			}
			if k < n && IdentifiableNodesK(ps, k+1).Contains(v) {
				t.Fatalf("trial %d node %d: max %d but also (k+1)-identifiable", trial, v, k)
			}
		}
	}
}

func TestNetworkMaxIdentifiability(t *testing.T) {
	// Three singleton paths: every covered node identifiable at any k.
	ps := mkPathSet(t, 3, []int{0}, []int{1}, []int{2})
	if got := NetworkMaxIdentifiability(ps); got != 3 {
		t.Fatalf("got %d, want 3 (cap)", got)
	}
	// Shared path: covered nodes not even 1-identifiable.
	ps2 := mkPathSet(t, 3, []int{0, 1})
	if got := NetworkMaxIdentifiability(ps2); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
	// Empty path set: nothing covered.
	if got := NetworkMaxIdentifiability(NewPathSet(3)); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}

func TestNetworkMaxIdentifiabilityIsMinOverCovered(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(5)
		ps := randomPathSet(rng, n, 1+rng.Intn(4), 3)
		covered := ps.CoveredNodes()
		if covered.Empty() {
			continue
		}
		min := n + 1
		covered.ForEach(func(v int) bool {
			if k := MaxIdentifiability(ps, v); k < min {
				min = k
			}
			return true
		})
		if got := NetworkMaxIdentifiability(ps); got != min {
			t.Fatalf("trial %d: network max %d != min over covered %d", trial, got, min)
		}
	}
}

func TestMaxIdentifiabilityBoundsSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		ps := randomPathSet(rng, n, 1+rng.Intn(5), 4)
		for v := 0; v < n; v++ {
			exact := MaxIdentifiability(ps, v)
			lower, upper := MaxIdentifiabilityBounds(ps, v)
			if lower > exact || exact > upper {
				t.Fatalf("trial %d node %d: bounds [%d, %d] miss exact %d\npaths=%v",
					trial, v, lower, upper, exact, dumpPaths(ps))
			}
		}
	}
}

func TestMaxIdentifiabilityBoundsUncoverable(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0})
	lower, upper := MaxIdentifiabilityBounds(ps, 0)
	if lower != 3 || upper != 3 {
		t.Fatalf("bounds = [%d, %d], want [3, 3]", lower, upper)
	}
	// Uncovered node bounds collapse to zero.
	lower, upper = MaxIdentifiabilityBounds(ps, 1)
	if lower != 0 || upper != 0 {
		t.Fatalf("bounds = [%d, %d], want [0, 0]", lower, upper)
	}
	lower, upper = MaxIdentifiabilityBounds(ps, -1)
	if lower != 0 || upper != 0 {
		t.Fatalf("out of range bounds = [%d, %d]", lower, upper)
	}
}
