package tomography

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bitset"
)

func TestNewPriorValidation(t *testing.T) {
	if _, err := NewPrior([]float64{0.5, 0}); err == nil {
		t.Fatal("p=0 should error")
	}
	if _, err := NewPrior([]float64{1}); err == nil {
		t.Fatal("p=1 should error")
	}
	if _, err := NewPrior([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN should error")
	}
	pr, err := NewPrior([]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumNodes() != 2 {
		t.Fatal("NumNodes wrong")
	}
}

func TestUniformPrior(t *testing.T) {
	pr, err := UniformPrior(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumNodes() != 3 {
		t.Fatal("size wrong")
	}
	if _, err := UniformPrior(2, 0); err == nil {
		t.Fatal("p=0 should error")
	}
}

func TestLogLikelihood(t *testing.T) {
	pr, err := NewPrior([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Every outcome equally likely: ln(0.25).
	want := math.Log(0.25)
	for _, f := range [][]int{nil, {0}, {1}, {0, 1}} {
		got, err := pr.LogLikelihood(f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("LogLikelihood(%v) = %v, want %v", f, got, want)
		}
	}
	// Rare failures: failing is less likely than not.
	rare, err := NewPrior([]float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	failed, err := rare.LogLikelihood([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := rare.LogLikelihood(nil)
	if err != nil {
		t.Fatal(err)
	}
	if failed >= healthy {
		t.Fatal("failing a rare node should lower likelihood")
	}
}

func TestLogLikelihoodRejectsOutOfRangeNodes(t *testing.T) {
	pr, err := NewPrior([]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Before validation these silently fell out of the membership map, so
	// the set scored like the empty hypothesis.
	for _, f := range [][]int{{-1}, {2}, {0, 7}} {
		if _, err := pr.LogLikelihood(f); err == nil {
			t.Fatalf("LogLikelihood(%v) should reject out-of-range node", f)
		}
	}
}

func TestMostLikelyExplanationPrefersFailureProneNode(t *testing.T) {
	// Failed paths {0,2} and {1,2}. Cardinality-greedy picks the shared
	// node 2. But if node 2 is very reliable and 0, 1 are failure-prone,
	// the likely explanation is {0, 1}.
	ps := mkPathSet(t, 3, []int{0, 2}, []int{1, 2})
	o, err := NewObservation(ps, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}

	cardinality, err := GreedyExplanation(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cardinality, []int{2}) {
		t.Fatalf("cardinality explanation = %v, want [2]", cardinality)
	}

	prior, err := NewPrior([]float64{0.45, 0.45, 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	likely, err := MostLikelyExplanation(o, prior)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(likely, []int{0, 1}) {
		t.Fatalf("likely explanation = %v, want [0 1]", likely)
	}
	// Sanity: the weighted answer really is more likely under the prior.
	llLikely, err := prior.LogLikelihood(likely)
	if err != nil {
		t.Fatal(err)
	}
	llCard, err := prior.LogLikelihood(cardinality)
	if err != nil {
		t.Fatal(err)
	}
	if llLikely <= llCard {
		t.Fatal("weighted explanation should have higher likelihood")
	}
}

func TestMostLikelyExplanationUniformMatchesGreedy(t *testing.T) {
	ps := mkPathSet(t, 4, []int{0, 1}, []int{1, 2}, []int{3})
	o, err := NewObservation(ps, []bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := UniformPrior(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	likely, err := MostLikelyExplanation(o, prior)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := GreedyExplanation(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(likely, plain) {
		t.Fatalf("uniform prior: %v != %v", likely, plain)
	}
}

func TestMostLikelyExplanationErrors(t *testing.T) {
	ps := mkPathSet(t, 2, []int{0}, []int{0, 1})
	o, err := NewObservation(ps, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := UniformPrior(2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MostLikelyExplanation(o, prior); err == nil {
		t.Fatal("impossible observation should error")
	}
	if _, err := MostLikelyExplanation(o, nil); err == nil {
		t.Fatal("nil prior should error")
	}
	wrong, err := UniformPrior(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MostLikelyExplanation(o, wrong); err == nil {
		t.Fatal("universe mismatch should error")
	}
}

func TestMostLikelyExplanationNoFailure(t *testing.T) {
	ps := mkPathSet(t, 2, []int{0})
	o, err := NewObservation(ps, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := UniformPrior(2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	expl, err := MostLikelyExplanation(o, prior)
	if err != nil || expl != nil {
		t.Fatalf("got %v, %v", expl, err)
	}
}

func TestRankCandidates(t *testing.T) {
	// Path {0,1} failed over 2 nodes, k=1: candidates {0} and {1}. Node 0
	// fails often, node 1 rarely → {0} ranks first.
	ps := mkPathSet(t, 2, []int{0, 1})
	o, err := Observe(ps, bitset.FromIndices(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	prior, err := NewPrior([]float64{0.3, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankCandidates(o, prior, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("candidates = %d, want 2", len(ranked))
	}
	if !reflect.DeepEqual(ranked[0].Failure, []int{0}) {
		t.Fatalf("top candidate = %v, want [0]", ranked[0].Failure)
	}
	total := ranked[0].Posterior + ranked[1].Posterior
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("posteriors sum to %v", total)
	}
	if ranked[0].Posterior <= ranked[1].Posterior {
		t.Fatal("likelier candidate should have higher posterior")
	}
}

func TestRankCandidatesErrors(t *testing.T) {
	ps := mkPathSet(t, 2, []int{0, 1})
	o, err := Observe(ps, bitset.FromIndices(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RankCandidates(o, nil, 1); err == nil {
		t.Fatal("nil prior should error")
	}
	wrong, err := UniformPrior(5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RankCandidates(o, wrong, 1); err == nil {
		t.Fatal("universe mismatch should error")
	}
}
