package tomography

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
)

// This file implements the probability-aware refinements of the paper's
// related work ([13]): when per-node failure probabilities are known, the
// best explanation is not the smallest one but the most likely one, and
// candidate hypotheses can be ranked instead of merely enumerated.

// Prior holds independent per-node failure probabilities.
type Prior struct {
	p []float64
}

// NewPrior validates per-node failure probabilities (each in (0, 1)).
// Probabilities of exactly 0 or 1 are rejected: a certain node state
// should be encoded by removing the node from the hypothesis space, not
// by degenerate weights.
func NewPrior(probs []float64) (*Prior, error) {
	for v, p := range probs {
		if !(p > 0 && p < 1) || math.IsNaN(p) {
			return nil, fmt.Errorf("tomography: node %d probability %v outside (0, 1)", v, p)
		}
	}
	return &Prior{p: append([]float64(nil), probs...)}, nil
}

// UniformPrior returns a prior with the same failure probability for
// every one of n nodes.
func UniformPrior(n int, p float64) (*Prior, error) {
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = p
	}
	return NewPrior(probs)
}

// NumNodes returns the prior's universe size.
func (pr *Prior) NumNodes() int { return len(pr.p) }

// LogLikelihood returns the log-probability that exactly the given nodes
// failed (independent failures): Σ_{v∈F} ln p_v + Σ_{v∉F} ln(1−p_v).
// Every node must lie inside the prior's universe; an out-of-range node
// is an error, not a silently-ignored term (which would overstate the
// likelihood of the remaining set).
func (pr *Prior) LogLikelihood(f []int) (float64, error) {
	in := make(map[int]bool, len(f))
	for _, v := range f {
		if v < 0 || v >= len(pr.p) {
			return 0, fmt.Errorf("tomography: node %d outside prior over %d nodes", v, len(pr.p))
		}
		in[v] = true
	}
	ll := 0.0
	for v, p := range pr.p {
		if in[v] {
			ll += math.Log(p)
		} else {
			ll += math.Log(1 - p)
		}
	}
	return ll, nil
}

// weight returns the per-node cost for weighted set cover: choosing v
// costs ln((1−p_v)/p_v) ≥ 0 for p_v ≤ 1/2 — the log-likelihood penalty of
// flipping v from healthy to failed. Rare failures cost more, so the
// cheapest cover is the most likely explanation among covers.
func (pr *Prior) weight(v int) float64 {
	return math.Log((1 - pr.p[v]) / pr.p[v])
}

// MostLikelyExplanation returns a failure set explaining the observation,
// chosen by greedy *weighted* set cover: it minimizes (approximately) the
// summed log-likelihood penalty instead of the set size, so a common-
// failure node is preferred over two rare ones. With a uniform prior it
// degenerates to GreedyExplanation's cardinality objective.
func MostLikelyExplanation(o *Observation, prior *Prior) ([]int, error) {
	if prior == nil {
		return nil, fmt.Errorf("tomography: nil prior")
	}
	n := o.Paths.NumNodes()
	if prior.NumNodes() != n {
		return nil, fmt.Errorf("tomography: prior over %d nodes, paths over %d", prior.NumNodes(), n)
	}
	sigs := o.Paths.Signatures()
	target := o.failedSignature()
	if target.Empty() {
		return nil, nil
	}

	healthy := bitset.New(n)
	for i, failed := range o.Failed {
		if !failed {
			healthy.UnionWith(o.Paths.Path(i))
		}
	}

	uncovered := target.Clone()
	var explanation []int
	for !uncovered.Empty() {
		best := -1
		bestScore := math.Inf(-1)
		for v := 0; v < n; v++ {
			if healthy.Contains(v) {
				continue
			}
			gain := uncovered.IntersectionCount(sigs[v])
			if gain == 0 {
				continue
			}
			// Classic weighted-set-cover rule: coverage per unit cost.
			// Zero or negative weight (p_v ≥ 1/2, failure-prone node) is
			// clamped to a small ε so such nodes are strongly preferred.
			w := prior.weight(v)
			if w < 1e-9 {
				w = 1e-9
			}
			if score := float64(gain) / w; score > bestScore {
				best, bestScore = v, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("tomography: observation cannot be explained by node failures")
		}
		explanation = append(explanation, best)
		uncovered.DifferenceWith(sigs[best])
	}
	sort.Ints(explanation)
	return explanation, nil
}

// RankedCandidate is a consistent hypothesis with its prior likelihood.
type RankedCandidate struct {
	Failure       []int
	LogLikelihood float64
	// Posterior is the probability of this hypothesis given the
	// observation, normalized over the consistent candidates.
	Posterior float64
}

// RankCandidates scores every consistent failure hypothesis of size ≤ k
// by its prior likelihood and normalizes into a posterior (the
// observation is deterministic given the failure set, so the posterior is
// the renormalized prior over consistent sets). Candidates come back most
// likely first; ties break toward smaller sets, then lexicographically
// (the order Localize produced).
func RankCandidates(o *Observation, prior *Prior, k int) ([]RankedCandidate, error) {
	if prior == nil {
		return nil, fmt.Errorf("tomography: nil prior")
	}
	if prior.NumNodes() != o.Paths.NumNodes() {
		return nil, fmt.Errorf("tomography: prior universe mismatch")
	}
	diag, err := Localize(o, k)
	if err != nil {
		return nil, err
	}
	out := make([]RankedCandidate, 0, len(diag.Consistent))
	maxLL := math.Inf(-1)
	for _, f := range diag.Consistent {
		ll, err := prior.LogLikelihood(f)
		if err != nil {
			return nil, err
		}
		if ll > maxLL {
			maxLL = ll
		}
		out = append(out, RankedCandidate{Failure: f, LogLikelihood: ll})
	}
	// Normalize in a numerically safe way (subtract the max exponent).
	total := 0.0
	for i := range out {
		out[i].Posterior = math.Exp(out[i].LogLikelihood - maxLL)
		total += out[i].Posterior
	}
	for i := range out {
		out[i].Posterior /= total
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].LogLikelihood > out[j].LogLikelihood
	})
	return out, nil
}
