package tomography

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/monitor"
)

func mkPathSet(t testing.TB, n int, paths ...[]int) *monitor.PathSet {
	t.Helper()
	ps := monitor.NewPathSet(n)
	for _, p := range paths {
		if err := ps.Add(bitset.FromIndices(n, p...)); err != nil {
			t.Fatal(err)
		}
	}
	return ps
}

func TestNewObservationValidation(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0, 1})
	if _, err := NewObservation(nil, nil); err == nil {
		t.Fatal("nil paths should error")
	}
	if _, err := NewObservation(ps, []bool{true, false}); err == nil {
		t.Fatal("state length mismatch should error")
	}
	o, err := NewObservation(ps, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if !o.AnyFailure() {
		t.Fatal("AnyFailure should be true")
	}
}

func TestObserve(t *testing.T) {
	ps := mkPathSet(t, 4, []int{0, 1}, []int{2, 3})
	o, err := Observe(ps, bitset.FromIndices(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.Failed, []bool{true, false}) {
		t.Fatalf("Failed = %v", o.Failed)
	}
	if _, err := Observe(ps, bitset.New(5)); err == nil {
		t.Fatal("universe mismatch should error")
	}
	if _, err := Observe(nil, bitset.New(4)); err == nil {
		t.Fatal("nil paths should error")
	}
}

func TestLocalizeUniqueFailure(t *testing.T) {
	// Three singleton paths: failures are uniquely localizable.
	ps := mkPathSet(t, 3, []int{0}, []int{1}, []int{2})
	o, err := Observe(ps, bitset.FromIndices(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Localize(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Unique() {
		t.Fatalf("expected unique diagnosis, got %v", d.Consistent)
	}
	if !reflect.DeepEqual(d.Consistent[0], []int{1}) {
		t.Fatalf("Consistent = %v", d.Consistent)
	}
	if !reflect.DeepEqual(d.DefinitelyFailed, []int{1}) {
		t.Fatalf("DefinitelyFailed = %v", d.DefinitelyFailed)
	}
	if d.Ambiguity() != 0 {
		t.Fatalf("Ambiguity = %d", d.Ambiguity())
	}
}

func TestLocalizeAmbiguous(t *testing.T) {
	// One path {0,1}: a failure of 0 and of 1 are indistinguishable.
	ps := mkPathSet(t, 3, []int{0, 1})
	o, err := Observe(ps, bitset.FromIndices(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Localize(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ambiguity() != 1 {
		t.Fatalf("Ambiguity = %d, want 1", d.Ambiguity())
	}
	if !reflect.DeepEqual(d.PossiblyFailed, []int{0, 1}) {
		t.Fatalf("PossiblyFailed = %v", d.PossiblyFailed)
	}
	if len(d.DefinitelyFailed) != 0 {
		t.Fatalf("DefinitelyFailed = %v", d.DefinitelyFailed)
	}
	if !reflect.DeepEqual(d.Unobserved, []int{2}) {
		t.Fatalf("Unobserved = %v", d.Unobserved)
	}
}

func TestLocalizeNoFailure(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0, 1})
	o, err := Observe(ps, bitset.New(3))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Localize(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Consistent: ∅ and {2} (uncovered node — but wait: {2} has empty
	// signature, so it matches "no failed paths"). Uncovered node failures
	// are inherently invisible.
	if len(d.Consistent) != 2 {
		t.Fatalf("Consistent = %v, want ∅ and {2}", d.Consistent)
	}
	if !reflect.DeepEqual(d.Healthy, []int{0, 1}) {
		t.Fatalf("Healthy = %v", d.Healthy)
	}
}

func TestLocalizeSuccessfulPathPrunes(t *testing.T) {
	// Paths {0,1} failed and {1,2} OK: node 1 is proven healthy, so the
	// only consistent single failure is {0}.
	ps := mkPathSet(t, 3, []int{0, 1}, []int{1, 2})
	o, err := NewObservation(ps, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Localize(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Unique() || !reflect.DeepEqual(d.Consistent[0], []int{0}) {
		t.Fatalf("Consistent = %v, want [[0]]", d.Consistent)
	}
}

func TestLocalizeInconsistent(t *testing.T) {
	// Two failed disjoint paths cannot be explained by k = 1 failures
	// unless a shared node exists — here there is none.
	ps := mkPathSet(t, 4, []int{0, 1}, []int{2, 3})
	o, err := NewObservation(ps, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Localize(o, 1); err == nil {
		t.Fatal("expected inconsistency error at k=1")
	}
	// k = 2 finds the four two-node explanations.
	d, err := Localize(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Consistent) != 4 {
		t.Fatalf("Consistent = %v, want 4 sets", d.Consistent)
	}
}

func TestLocalizeNegativeK(t *testing.T) {
	ps := mkPathSet(t, 2, []int{0})
	o, err := Observe(ps, bitset.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Localize(o, -1); err == nil {
		t.Fatal("negative k should error")
	}
}

func TestGreedyExplanation(t *testing.T) {
	// Failed paths {0,1} and {1,2}; healthy path {3}. Node 1 explains both.
	ps := mkPathSet(t, 4, []int{0, 1}, []int{1, 2}, []int{3})
	o, err := NewObservation(ps, []bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	expl, err := GreedyExplanation(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(expl, []int{1}) {
		t.Fatalf("explanation = %v, want [1]", expl)
	}
}

func TestGreedyExplanationNoFailures(t *testing.T) {
	ps := mkPathSet(t, 2, []int{0})
	o, err := NewObservation(ps, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	expl, err := GreedyExplanation(o)
	if err != nil {
		t.Fatal(err)
	}
	if expl != nil {
		t.Fatalf("explanation = %v, want nil", expl)
	}
}

func TestGreedyExplanationImpossible(t *testing.T) {
	// The failed path's only node also lies on a successful path:
	// logically impossible observation.
	ps := mkPathSet(t, 2, []int{0}, []int{0, 1})
	o, err := NewObservation(ps, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GreedyExplanation(o); err == nil {
		t.Fatal("impossible observation should error")
	}
}

func TestGreedyExplanationCoversAllFailedPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		ps := monitor.NewPathSet(n)
		for i := 0; i < 2+rng.Intn(5); i++ {
			start := rng.Intn(n)
			end := start + 1 + rng.Intn(3)
			if end > n {
				end = n
			}
			p := bitset.New(n)
			for v := start; v < end; v++ {
				p.Add(v)
			}
			if err := ps.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		truth := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(4) == 0 {
				truth.Add(v)
			}
		}
		o, err := Observe(ps, truth)
		if err != nil {
			t.Fatal(err)
		}
		expl, err := GreedyExplanation(o)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The explanation must reproduce the observation exactly.
		o2, err := Observe(ps, bitset.FromIndices(n, expl...))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(o.Failed, o2.Failed) {
			t.Fatalf("trial %d: explanation %v does not reproduce observation", trial, expl)
		}
	}
}

func TestClassifyNodes(t *testing.T) {
	// Paths: {0,1} failed, {1,2} OK; node 3 unobserved; node 4 covered by
	// an OK path {4}.
	ps := mkPathSet(t, 5, []int{0, 1}, []int{1, 2}, []int{4})
	o, err := NewObservation(ps, []bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Localize(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	states := ClassifyNodes(o, d)
	want := []NodeState{StateFailed, StateHealthy, StateHealthy, StateUnobserved, StateHealthy}
	if !reflect.DeepEqual(states, want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
}

func TestNodeStateString(t *testing.T) {
	for s, want := range map[NodeState]string{
		StateFailed:     "failed",
		StateHealthy:    "healthy",
		StateAmbiguous:  "ambiguous",
		StateUnknown:    "unknown",
		StateUnobserved: "unobserved",
		NodeState(99):   "NodeState(99)",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}

// The paper's central claim end-to-end: a max-distinguishability placement
// yields lower localization ambiguity than a QoS placement. Here we check
// the monitor-tomography contract: ambiguity equals the size of the
// signature class minus one.
func TestAmbiguityMatchesUncertaintyMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(6)
		ps := monitor.NewPathSet(n)
		for i := 0; i < 1+rng.Intn(4); i++ {
			start := rng.Intn(n)
			end := start + 1 + rng.Intn(3)
			if end > n {
				end = n
			}
			p := bitset.New(n)
			for v := start; v < end; v++ {
				p.Add(v)
			}
			if err := ps.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		truth := []int{rng.Intn(n)}
		o, err := Observe(ps, bitset.FromIndices(n, truth...))
		if err != nil {
			t.Fatal(err)
		}
		d, err := Localize(o, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := monitor.UncertaintyK(ps, 1, truth)
		if err != nil {
			t.Fatal(err)
		}
		if int64(d.Ambiguity()) != want {
			t.Fatalf("trial %d: ambiguity %d != |I_1| %d", trial, d.Ambiguity(), want)
		}
	}
}
