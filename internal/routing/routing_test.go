package routing

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func lineRouter(t *testing.T, n int) *Router {
	t.Helper()
	g, err := topology.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewEmptyGraph(t *testing.T) {
	if _, err := New(graph.New(0)); !errors.Is(err, graph.ErrEmptyGraph) {
		t.Fatalf("got %v, want ErrEmptyGraph", err)
	}
}

func TestDistance(t *testing.T) {
	r := lineRouter(t, 5)
	if d := r.Distance(0, 4); d != 4 {
		t.Fatalf("Distance(0,4) = %v, want 4", d)
	}
	if d := r.Distance(2, 2); d != 0 {
		t.Fatalf("Distance(2,2) = %v, want 0", d)
	}
}

func TestDistanceUnreachable(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	r, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Distance(0, 2); d != -1 {
		t.Fatalf("Distance = %v, want -1", d)
	}
	if p := r.PathNodes(0, 2); p != nil {
		t.Fatalf("PathNodes = %v, want nil", p)
	}
	if _, err := r.Path(0, 2); err == nil {
		t.Fatal("Path should error for unreachable pair")
	}
	if e := r.Eccentricity([]graph.NodeID{0, 2}, 1); e != -1 {
		t.Fatalf("Eccentricity = %v, want -1", e)
	}
}

func TestPathNodesEndpoints(t *testing.T) {
	r := lineRouter(t, 4)
	got := r.PathNodes(0, 3)
	if !reflect.DeepEqual(got, []graph.NodeID{0, 1, 2, 3}) {
		t.Fatalf("PathNodes = %v", got)
	}
	// Degenerate path: client co-located with host (footnote 3 in paper).
	if got := r.PathNodes(2, 2); !reflect.DeepEqual(got, []graph.NodeID{2}) {
		t.Fatalf("degenerate path = %v", got)
	}
}

func TestPathBitset(t *testing.T) {
	r := lineRouter(t, 4)
	p, err := r.Path(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Indices(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Path = %v", got)
	}
	if p.Cap() != 4 {
		t.Fatalf("path universe = %d, want 4", p.Cap())
	}
}

func TestPathSymmetricNodes(t *testing.T) {
	// For an undirected graph with deterministic tie-breaks, the node SET of
	// p(c,h) equals that of p(h,c) even if direction differs.
	topo := topology.MustBuild(topology.Abovenet)
	r, err := New(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.Graph.NumNodes()
	for c := 0; c < n; c += 3 {
		for h := 0; h < n; h += 5 {
			d1, d2 := r.Distance(c, h), r.Distance(h, c)
			if d1 != d2 {
				t.Fatalf("asymmetric distance %v vs %v", d1, d2)
			}
		}
	}
}

func TestPathSet(t *testing.T) {
	r := lineRouter(t, 5)
	ps, err := r.PathSet([]graph.NodeID{0, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("|P| = %d", len(ps))
	}
	if got := ps[0].Indices(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("p(0,2) = %v", got)
	}
	if got := ps[1].Indices(); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("p(4,2) = %v", got)
	}
}

func TestPathSetDuplicateClient(t *testing.T) {
	r := lineRouter(t, 5)
	if _, err := r.PathSet([]graph.NodeID{1, 1}, 2); err == nil {
		t.Fatal("duplicate client should error")
	}
}

func TestEccentricity(t *testing.T) {
	r := lineRouter(t, 6)
	if e := r.Eccentricity([]graph.NodeID{0, 5}, 2); e != 3 {
		t.Fatalf("Eccentricity = %v, want 3", e)
	}
	if e := r.Eccentricity(nil, 2); e != 0 {
		t.Fatalf("Eccentricity(no clients) = %v, want 0", e)
	}
}

func TestPathsConsistentWithDistance(t *testing.T) {
	topo := topology.MustBuild(topology.Tiscali)
	r, err := New(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.Graph.NumNodes()
	for c := 0; c < n; c += 7 {
		for h := 0; h < n; h += 11 {
			nodes := r.PathNodes(c, h)
			if nodes == nil {
				t.Fatalf("no path %d→%d in connected graph", c, h)
			}
			if float64(len(nodes)-1) != r.Distance(c, h) {
				t.Fatalf("path length %d disagrees with distance %v", len(nodes)-1, r.Distance(c, h))
			}
			// Consecutive nodes must be adjacent; endpoints must match.
			if nodes[0] != c || nodes[len(nodes)-1] != h {
				t.Fatalf("endpoints wrong: %v for (%d,%d)", nodes, c, h)
			}
			for i := 1; i < len(nodes); i++ {
				if !topo.Graph.HasEdge(nodes[i-1], nodes[i]) {
					t.Fatalf("non-edge on path: %d-%d", nodes[i-1], nodes[i])
				}
			}
		}
	}
}

func TestRouterDeterministic(t *testing.T) {
	topo := topology.MustBuild(topology.Abovenet)
	r1, _ := New(topo.Graph)
	r2, _ := New(topo.Graph)
	for c := 0; c < topo.Graph.NumNodes(); c++ {
		for h := 0; h < topo.Graph.NumNodes(); h++ {
			if !reflect.DeepEqual(r1.PathNodes(c, h), r2.PathNodes(c, h)) {
				t.Fatalf("nondeterministic path for (%d,%d)", c, h)
			}
		}
	}
}

func TestMustHavePanics(t *testing.T) {
	r := lineRouter(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Distance(0, 9)
}
