// Package routing computes the measurement paths of the paper's Section
// II-A: for every (client, host) pair, the set of nodes p(c, h) traversed
// by a service request under the network's routing protocol, endpoints
// included. The paper assumes one fixed path per pair ("uncontrollable"
// paths in the terminology of [5]); we realize that with deterministic
// shortest-path routing (hop count, lexicographic tie-break), the standard
// stand-in when the operator's routing tables are unavailable.
package routing

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// Router serves shortest-path measurement paths and distances over a
// graph. New precomputes all-pairs trees up front (one Dijkstra per
// node, the Section III-A complexity budget — fine up to a few thousand
// nodes); NewLazy computes each root's tree on first use instead, so
// memory and CPU scale with the number of distinct roots actually
// queried (clients plus candidate hosts) rather than N². Both variants
// produce identical paths and distances and are safe for concurrent use.
type Router struct {
	g     *graph.Graph
	trees []*graph.ShortestPathTree

	// lazy mode: trees entries are filled on demand under mu. Trees are
	// immutable once published, so readers that already hold a pointer
	// never need the lock again.
	lazy bool
	mu   sync.Mutex
}

// New builds a Router for g with every shortest-path tree precomputed.
// The graph must be non-empty; for placement it should also be connected
// (see graph.Validate), but New does not insist so that tests can
// exercise unreachable pairs.
func New(g *graph.Graph) (*Router, error) {
	r, err := NewLazy(g)
	if err != nil {
		return nil, err
	}
	r.lazy = false
	for v := 0; v < g.NumNodes(); v++ {
		r.trees[v] = g.Dijkstra(v)
	}
	return r, nil
}

// NewLazy builds a Router that computes each node's shortest-path tree
// on first use. Queries return exactly what the eager Router returns;
// only the construction cost moves. Use it for large generated
// topologies where all-pairs precomputation (O(N) Dijkstras, O(N²)
// distance memory) is the bottleneck and only a small subset of nodes
// ever roots a query.
func NewLazy(g *graph.Graph) (*Router, error) {
	if g.NumNodes() == 0 {
		return nil, graph.ErrEmptyGraph
	}
	return &Router{
		g:     g,
		trees: make([]*graph.ShortestPathTree, g.NumNodes()),
		lazy:  true,
	}, nil
}

// Lazy reports whether the router computes trees on demand.
func (r *Router) Lazy() bool { return r.lazy }

// TreesBuilt returns how many shortest-path trees have been computed so
// far — N for an eager router, the number of distinct roots queried for
// a lazy one. It exists for tests and capacity accounting.
func (r *Router) TreesBuilt() int {
	if !r.lazy {
		return len(r.trees)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.trees {
		if t != nil {
			n++
		}
	}
	return n
}

// tree returns v's shortest-path tree, computing and memoizing it in
// lazy mode. The Dijkstra runs under the mutex: concurrent first
// touches of the same root would otherwise duplicate the work, and the
// placement build path is effectively single-threaded per root anyway.
func (r *Router) tree(v graph.NodeID) *graph.ShortestPathTree {
	if !r.lazy {
		return r.trees[v]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.trees[v]; t != nil {
		return t
	}
	t := r.g.Dijkstra(v)
	r.trees[v] = t
	return t
}

// Graph returns the routed graph.
func (r *Router) Graph() *graph.Graph { return r.g }

// NumNodes returns the number of nodes in the routed graph.
func (r *Router) NumNodes() int { return r.g.NumNodes() }

// Distance returns the routing distance from u to v, or -1 if unreachable.
func (r *Router) Distance(u, v graph.NodeID) float64 {
	r.mustHave(u)
	r.mustHave(v)
	return r.tree(u).Dist[v]
}

// DistancesFrom returns the distance vector rooted at v: entry u is
// d(v, u), or -1 if unreachable. The slice is the router's own memoized
// tree data — callers must treat it as read-only. One call costs one
// Dijkstra in lazy mode and nothing afterwards, which is what makes the
// client-rooted QoS sweep (one tree per client instead of one per host)
// scale to 10k–100k nodes.
func (r *Router) DistancesFrom(v graph.NodeID) []float64 {
	r.mustHave(v)
	return r.tree(v).Dist
}

// PathNodes returns the node sequence from c to h inclusive, or nil if h is
// unreachable from c. The path is taken from h's shortest-path tree so that
// p(c, h) is the route a request from client c to host h follows under
// destination-rooted routing; because tie-breaking is deterministic, the
// same (c, h) always yields the same path.
func (r *Router) PathNodes(c, h graph.NodeID) []graph.NodeID {
	r.mustHave(c)
	r.mustHave(h)
	nodes := r.tree(h).PathTo(c)
	// PathTo walks from the tree root h toward c; present it client-first.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	return nodes
}

// Path returns the measurement path p(c, h) as a node set over the graph's
// universe (the representation Section II-A uses: a path is the set of
// traversed nodes, endpoints included). It returns an error if h is
// unreachable from c.
func (r *Router) Path(c, h graph.NodeID) (*bitset.Set, error) {
	nodes := r.PathNodes(c, h)
	if nodes == nil {
		return nil, fmt.Errorf("routing: no path between %d and %d", c, h)
	}
	s := bitset.New(r.g.NumNodes())
	for _, v := range nodes {
		s.Add(v)
	}
	return s, nil
}

// SparsePath returns p(c, h) in the sparse node-set representation,
// whose memory is proportional to the hop count rather than the graph
// size. It returns an error if h is unreachable from c.
func (r *Router) SparsePath(c, h graph.NodeID) (*bitset.Sparse, error) {
	nodes := r.PathNodes(c, h)
	if nodes == nil {
		return nil, fmt.Errorf("routing: no path between %d and %d", c, h)
	}
	ints := make([]int, len(nodes))
	for i, v := range nodes {
		ints[i] = int(v)
	}
	return bitset.SparseFromNodes(r.g.NumNodes(), ints), nil
}

// PathSet returns the measurement paths P(C, h) = {p(c, h) : c ∈ C}
// between every client in C and host h (Section II-C). Duplicate client
// entries produce duplicate paths and are rejected; unreachable pairs are
// an error.
func (r *Router) PathSet(clients []graph.NodeID, h graph.NodeID) ([]*bitset.Set, error) {
	seen := make(map[graph.NodeID]bool, len(clients))
	out := make([]*bitset.Set, 0, len(clients))
	for _, c := range clients {
		if seen[c] {
			return nil, fmt.Errorf("routing: duplicate client %d", c)
		}
		seen[c] = true
		p, err := r.Path(c, h)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// SparsePathSet is PathSet in the sparse representation — the form the
// placement instance stores so path memory scales with total hop count,
// not clients × N.
func (r *Router) SparsePathSet(clients []graph.NodeID, h graph.NodeID) ([]*bitset.Sparse, error) {
	seen := make(map[graph.NodeID]bool, len(clients))
	out := make([]*bitset.Sparse, 0, len(clients))
	for _, c := range clients {
		if seen[c] {
			return nil, fmt.Errorf("routing: duplicate client %d", c)
		}
		seen[c] = true
		p, err := r.SparsePath(c, h)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Eccentricity returns max_{c ∈ C} d(c, h), the worst-case client distance
// d(C, h) of Section III-A, or -1 if any client is unreachable from h.
func (r *Router) Eccentricity(clients []graph.NodeID, h graph.NodeID) float64 {
	r.mustHave(h)
	dist := r.tree(h).Dist
	worst := 0.0
	for _, c := range clients {
		d := dist[c]
		if d < 0 {
			return -1
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func (r *Router) mustHave(v graph.NodeID) {
	if v < 0 || v >= r.g.NumNodes() {
		panic(fmt.Sprintf("routing: node %d out of range [0, %d)", v, r.g.NumNodes()))
	}
}
