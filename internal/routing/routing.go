// Package routing computes the measurement paths of the paper's Section
// II-A: for every (client, host) pair, the set of nodes p(c, h) traversed
// by a service request under the network's routing protocol, endpoints
// included. The paper assumes one fixed path per pair ("uncontrollable"
// paths in the terminology of [5]); we realize that with deterministic
// shortest-path routing (hop count, lexicographic tie-break), the standard
// stand-in when the operator's routing tables are unavailable.
package routing

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// Router precomputes all-pairs shortest paths over a graph and serves
// measurement paths and distances. Construction costs one Dijkstra per
// node, matching the complexity budget of Section III-A. A Router is
// immutable after construction and safe for concurrent use.
type Router struct {
	g     *graph.Graph
	trees []*graph.ShortestPathTree
}

// New builds a Router for g. The graph must be non-empty; for placement it
// should also be connected (see graph.Validate), but New does not insist so
// that tests can exercise unreachable pairs.
func New(g *graph.Graph) (*Router, error) {
	if g.NumNodes() == 0 {
		return nil, graph.ErrEmptyGraph
	}
	r := &Router{
		g:     g,
		trees: make([]*graph.ShortestPathTree, g.NumNodes()),
	}
	for v := 0; v < g.NumNodes(); v++ {
		r.trees[v] = g.Dijkstra(v)
	}
	return r, nil
}

// Graph returns the routed graph.
func (r *Router) Graph() *graph.Graph { return r.g }

// NumNodes returns the number of nodes in the routed graph.
func (r *Router) NumNodes() int { return r.g.NumNodes() }

// Distance returns the routing distance from u to v, or -1 if unreachable.
func (r *Router) Distance(u, v graph.NodeID) float64 {
	r.mustHave(u)
	r.mustHave(v)
	return r.trees[u].Dist[v]
}

// PathNodes returns the node sequence from c to h inclusive, or nil if h is
// unreachable from c. The path is taken from h's shortest-path tree so that
// p(c, h) is the route a request from client c to host h follows under
// destination-rooted routing; because tie-breaking is deterministic, the
// same (c, h) always yields the same path.
func (r *Router) PathNodes(c, h graph.NodeID) []graph.NodeID {
	r.mustHave(c)
	r.mustHave(h)
	nodes := r.trees[h].PathTo(c)
	// PathTo walks from the tree root h toward c; present it client-first.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	return nodes
}

// Path returns the measurement path p(c, h) as a node set over the graph's
// universe (the representation Section II-A uses: a path is the set of
// traversed nodes, endpoints included). It returns an error if h is
// unreachable from c.
func (r *Router) Path(c, h graph.NodeID) (*bitset.Set, error) {
	nodes := r.PathNodes(c, h)
	if nodes == nil {
		return nil, fmt.Errorf("routing: no path between %d and %d", c, h)
	}
	s := bitset.New(r.g.NumNodes())
	for _, v := range nodes {
		s.Add(v)
	}
	return s, nil
}

// PathSet returns the measurement paths P(C, h) = {p(c, h) : c ∈ C}
// between every client in C and host h (Section II-C). Duplicate client
// entries produce duplicate paths and are rejected; unreachable pairs are
// an error.
func (r *Router) PathSet(clients []graph.NodeID, h graph.NodeID) ([]*bitset.Set, error) {
	seen := make(map[graph.NodeID]bool, len(clients))
	out := make([]*bitset.Set, 0, len(clients))
	for _, c := range clients {
		if seen[c] {
			return nil, fmt.Errorf("routing: duplicate client %d", c)
		}
		seen[c] = true
		p, err := r.Path(c, h)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Eccentricity returns max_{c ∈ C} d(c, h), the worst-case client distance
// d(C, h) of Section III-A, or -1 if any client is unreachable from h.
func (r *Router) Eccentricity(clients []graph.NodeID, h graph.NodeID) float64 {
	r.mustHave(h)
	worst := 0.0
	for _, c := range clients {
		d := r.trees[h].Dist[c]
		if d < 0 {
			return -1
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func (r *Router) mustHave(v graph.NodeID) {
	if v < 0 || v >= r.g.NumNodes() {
		panic(fmt.Sprintf("routing: node %d out of range [0, %d)", v, r.g.NumNodes()))
	}
}
