package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the log writes through. It exists so the
// crash-injection harness (CrashFS) can kill the daemon's storage at any
// byte offset or between any two metadata operations; production code
// uses OSFS. Every implementation must expose real durability semantics:
// File.Sync and SyncDir must reach stable storage before returning.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenRead opens name for reading.
	OpenRead(name string) (io.ReadCloser, error)
	// ReadDir returns the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Remove deletes name; removing an absent file is an error (callers
	// that tolerate absence check os.IsNotExist themselves).
	Remove(name string) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory entry list, making renames and
	// removals in dir durable.
	SyncDir(dir string) error
}

// File is a writable log file.
type File interface {
	io.Writer
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Close releases the handle (without an implicit Sync).
	Close() error
}

// OSFS is the production FS: plain os calls.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// OpenRead implements FS.
func (OSFS) OpenRead(name string) (io.ReadCloser, error) { return os.Open(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS: without it a crash can lose the *names* of
// freshly renamed files even though their contents were fsynced.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
