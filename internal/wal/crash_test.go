package wal

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// crashWorkload is the deterministic op stream the crash matrix drives:
// numbered observation records, with (in compact mode) a fold every
// compactEvery appends. The op index is recoverable from the log alone,
// so a resumed life knows exactly where to pick up.
type crashWorkload struct {
	ops          int
	payloadBytes int
	segmentBytes int64
	compactEvery int
}

func (w crashWorkload) payload(i int) []byte {
	p := make([]byte, w.payloadBytes)
	copy(p, fmt.Sprintf("op-%06d|", i))
	return p
}

func (w crashWorkload) state(applied uint64) []byte {
	return []byte(fmt.Sprintf(`{"applied":%d}`, applied))
}

// run appends ops [from, w.ops) to l, compacting on schedule. It returns
// the index of the first op that did NOT get acknowledged (== w.ops on a
// clean run) and the error that stopped it.
func (w crashWorkload) run(t *testing.T, l *Log, from int) (int, error) {
	t.Helper()
	for i := from; i < w.ops; i++ {
		if _, err := l.Append(TypeObservations, w.payload(i)); err != nil {
			return i, err
		}
		applied := i + 1
		if w.compactEvery > 0 && applied%w.compactEvery == 0 {
			if err := l.Compact(w.state(uint64(applied))); err != nil {
				return applied, err
			}
		}
	}
	return w.ops, nil
}

// applied reads how many ops a recovered log has absorbed: the snapshot's
// fold point plus the replay tail.
func appliedOps(t *testing.T, rec *Recovery) int {
	t.Helper()
	base := 0
	if len(rec.SnapshotState) > 0 {
		var s struct {
			Applied int `json:"applied"`
		}
		if err := json.Unmarshal(rec.SnapshotState, &s); err != nil {
			t.Fatalf("snapshot state %q: %v", rec.SnapshotState, err)
		}
		base = s.Applied
	}
	if base != int(rec.SnapshotSeq) {
		t.Fatalf("snapshot state applied=%d but seq=%d", base, rec.SnapshotSeq)
	}
	return base + len(rec.Records)
}

// TestCrashMatrix is the wal-level half of the crash-injection
// acceptance criterion: for seeded kill points landing mid-append,
// mid-rotation, and mid-compaction, a recovered log (a) keeps every
// acknowledged record, (b) holds exactly a prefix of the reference op
// stream, and (c) after finishing the workload, is hash-chain-identical
// to a never-crashed reference run — verified offline by Check, the
// engine behind `placemon fsck`.
func TestCrashMatrix(t *testing.T) {
	modes := []struct {
		name string
		w    crashWorkload
	}{
		{"append", crashWorkload{ops: 60, payloadBytes: 200, segmentBytes: 1 << 20}},
		{"rotate", crashWorkload{ops: 60, payloadBytes: 600, segmentBytes: 4 << 10}},
		{"compact", crashWorkload{ops: 60, payloadBytes: 200, segmentBytes: 4 << 10, compactEvery: 10}},
	}
	const seeds = 10
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			// Reference life: never crashes. Its total FS cost also sizes
			// the seeded budgets so kills land inside the workload.
			refDir := t.TempDir()
			refFS := NewCrashFSBudget(OSFS{}, 1<<60)
			refLog, _, err := Open(refDir, Options{Sync: SyncAlways, SegmentBytes: mode.w.segmentBytes, FS: refFS})
			if err != nil {
				t.Fatal(err)
			}
			if n, err := mode.w.run(t, refLog, 0); err != nil || n != mode.w.ops {
				t.Fatalf("reference run stopped at %d: %v", n, err)
			}
			_, refHead := refLog.HeadHex()
			refSeqs := refLog.LastSeq()
			if err := refLog.Close(); err != nil {
				t.Fatal(err)
			}
			cost := (1 << 60) - refFS.budget
			if cost <= 0 {
				t.Fatal("reference consumed no budget")
			}

			for seed := int64(1); seed <= seeds; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					budget := 1 + rng.Int63n(cost)
					dir := t.TempDir()
					fs := NewCrashFSBudget(OSFS{}, budget)

					// First life: run until the injected crash (or clean
					// finish when the budget covers everything).
					acked := 0
					l, _, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: mode.w.segmentBytes, FS: fs})
					if err == nil {
						acked, err = mode.w.run(t, l, 0)
						l.Abort()
					}
					crashed := fs.Crashed()
					if err != nil && !crashed {
						t.Fatalf("first life failed without a crash: %v", err)
					}

					// Second life: the frozen remains, no fault injection.
					fs.Disarm()
					l2, rec, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: mode.w.segmentBytes, FS: fs})
					if err != nil {
						t.Fatalf("recovery refused (budget=%d): %v", budget, err)
					}
					applied := appliedOps(t, rec)
					if applied < acked {
						t.Fatalf("lost acknowledged records: acked=%d recovered=%d (budget=%d)",
							acked, applied, budget)
					}
					if applied > mode.w.ops {
						t.Fatalf("recovered %d ops, workload has %d", applied, mode.w.ops)
					}
					// Prefix property: the replay tail is exactly the ops
					// after the fold point, in order.
					base := int(rec.SnapshotSeq)
					for j, r := range rec.Records {
						want := mode.w.payload(base + j)
						if string(r.Payload) != string(want) {
							t.Fatalf("recovered op %d payload mismatch", base+j)
						}
					}

					// Finish the workload and compare against the reference:
					// the hash chain head commits to every record since
					// genesis, so equality is stream identity.
					if n, err := mode.w.run(t, l2, applied); err != nil || n != mode.w.ops {
						t.Fatalf("resumed run stopped at %d: %v", n, err)
					}
					if got := l2.LastSeq(); got != refSeqs {
						t.Fatalf("final seq %d, reference %d", got, refSeqs)
					}
					if _, head := l2.HeadHex(); head != refHead {
						t.Fatalf("final chain head %s, reference %s", head, refHead)
					}
					if err := l2.Close(); err != nil {
						t.Fatal(err)
					}
					if rep, err := Check(dir, false); err != nil {
						t.Fatalf("fsck of recovered log: %v (report %+v)", err, rep)
					}
				})
			}
		})
	}
}
