package wal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncMode selects when appends reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs every append before it returns: an acknowledged
	// write survives any crash. The safest and slowest mode.
	SyncAlways SyncMode = iota
	// SyncGroup batches concurrent appends under one fsync: each append
	// still returns only after its record is durable, but co-arriving
	// writers share the fsync cost (group commit).
	SyncGroup
	// SyncNone never fsyncs on append (only on rotation, compaction, and
	// close): fastest, but a crash can lose acknowledged writes.
	SyncNone
)

// String renders the mode as its flag value.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// ParseSyncMode parses a -wal-sync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync mode %q (want always, group, or none)", s)
	}
}

// Options parameterizes Open. The zero value is a production default:
// 4 MiB segments, fsync on every append, OS filesystem.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that finds the
	// active segment at or past it seals the segment and starts a new one
	// (default 4 MiB; minimum 4 KiB).
	SegmentBytes int64
	// Sync is the append durability policy (default SyncAlways).
	Sync SyncMode
	// GroupWindow is how long a group-commit leader waits for
	// co-committers before fsyncing (SyncGroup only; default 2ms).
	GroupWindow time.Duration
	// FS is the filesystem the log writes through (default OSFS); the
	// crash-injection harness substitutes CrashFS.
	FS FS
	// Logger receives recovery and compaction records (default discard).
	Logger *slog.Logger
	// OnFsync observes every fsync's duration (for the daemon's
	// placemond_wal_fsync_duration_seconds histogram).
	OnFsync func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SegmentBytes < 4<<10 {
		o.SegmentBytes = 4 << 10
	}
	if o.GroupWindow <= 0 {
		o.GroupWindow = 2 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Op is one record to append.
type Op struct {
	Type    byte
	Payload []byte
}

// AppendResult identifies one appended record for the caller's audit
// bookkeeping.
type AppendResult struct {
	Seq  uint64
	Hash [HashSize]byte
}

// Recovery is what Open found on disk: the newest snapshot (if any) plus
// every record after it, in order, chain-verified.
type Recovery struct {
	// SnapshotSeq is the last sequence folded into the snapshot (0 when
	// the log has no snapshot).
	SnapshotSeq uint64
	// SnapshotState is the caller-owned state document the snapshot holds.
	SnapshotState []byte
	// Records is the replay tail: every record with Seq > SnapshotSeq.
	Records []Record
	// TornTruncated reports that a torn final record was cut off, and
	// TornOffset is where (in the final segment) the tear began.
	TornTruncated bool
	TornOffset    int64
	// SegmentsRemoved counts stale segments (already folded into the
	// snapshot by an interrupted compaction) cleaned up during open.
	SegmentsRemoved int
}

// Log is the open write-ahead log. Create with Open.
type Log struct {
	dir  string
	fs   FS
	opts Options

	mu       sync.Mutex
	f        File   // active segment
	segPath  string // active segment path
	segBytes int64
	segCount int // sealed + active
	seq      uint64
	chain    [HashSize]byte
	snapSeq  uint64
	failed   error
	encBuf   []byte

	// Group-commit state: appenders wait until syncedSeq covers their
	// record; the first waiter becomes the flush leader.
	flushMu   sync.Mutex
	flushCond *sync.Cond
	flushing  bool
	syncedSeq uint64
	syncErr   error
}

const (
	segExt  = ".wal"
	snapExt = ".snap"
)

func segName(start uint64) string { return fmt.Sprintf("%016x%s", start, segExt) }
func snapName(upTo uint64) string { return fmt.Sprintf("%016x%s", upTo, snapExt) }
func parseSeqName(name, ext string) (uint64, bool) {
	if !strings.HasSuffix(name, ext) || strings.HasPrefix(name, ".") {
		return 0, false
	}
	base := strings.TrimSuffix(name, ext)
	if len(base) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// snapshotFile is the on-disk snapshot document.
type snapshotFile struct {
	Version  int    `json:"version"`
	Seq      uint64 `json:"seq"`
	Chain    string `json:"chain"` // hex chain head at Seq
	StateSum string `json:"state_sha256"`
	State    []byte `json:"state"` // caller-owned document (base64 in JSON)
}

// Open opens (creating if needed) the log in dir, recovers its contents,
// and returns the log ready for appends plus what recovery found. A torn
// final record is truncated and reported in Recovery; any other
// inconsistency — mid-log corruption, sequence gaps, a broken hash
// chain, an unreadable snapshot — fails loudly.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if dir == "" {
		return nil, nil, fmt.Errorf("wal: empty directory")
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, fs: fs, opts: opts}
	l.flushCond = sync.NewCond(&l.flushMu)

	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	// Recovery never appends to a surviving segment: a fresh active
	// segment starts right after the last recovered record, which keeps
	// the append path oblivious to how the previous process died.
	if err := l.openSegment(l.seq + 1); err != nil {
		return nil, nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		l.closeFileLocked()
		return nil, nil, fmt.Errorf("wal: sync dir: %w", err)
	}
	l.syncedSeq = l.seq
	return l, rec, nil
}

// recover loads the snapshot and replays the segments, leaving l.seq,
// l.chain, l.snapSeq, and l.segCount set. Runs before any appends, so no
// locking.
func (l *Log) recover() (*Recovery, error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var snaps []uint64
	var segs []uint64
	for _, name := range names {
		if n, ok := parseSeqName(name, snapExt); ok {
			snaps = append(snaps, n)
		} else if n, ok := parseSeqName(name, segExt); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	rec := &Recovery{}
	var chain [HashSize]byte
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		snap, err := l.readSnapshot(newest)
		if err != nil {
			return nil, err
		}
		ch, err := hex.DecodeString(snap.Chain)
		if err != nil || len(ch) != HashSize {
			return nil, fmt.Errorf("wal: snapshot %s: malformed chain head", snapName(newest))
		}
		copy(chain[:], ch)
		rec.SnapshotSeq = snap.Seq
		rec.SnapshotState = snap.State
		l.snapSeq = snap.Seq
		// Older snapshots are superseded; an interrupted compaction can
		// leave one behind.
		for _, n := range snaps[:len(snaps)-1] {
			if err := l.fs.Remove(filepath.Join(l.dir, snapName(n))); err != nil {
				return nil, fmt.Errorf("wal: remove stale snapshot: %w", err)
			}
		}
	}

	l.seq = rec.SnapshotSeq
	l.chain = chain
	logger := l.opts.Logger
	for i, start := range segs {
		path := filepath.Join(l.dir, segName(start))
		if start <= rec.SnapshotSeq {
			// Fully folded into the snapshot (compaction rotates before it
			// snapshots, so a segment starting at or before the snapshot
			// sequence holds no live records); an interrupted compaction
			// left it behind.
			if err := l.fs.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: remove folded segment: %w", err)
			}
			rec.SegmentsRemoved++
			continue
		}
		if start != l.seq+1 {
			return nil, fmt.Errorf("wal: segment %s starts at %d where %d expected (missing segment?)",
				segName(start), start, l.seq+1)
		}
		data, err := readAll(l.fs, path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", segName(start), err)
		}
		last := i == len(segs)-1
		n, tornOff, err := l.scanSegment(segName(start), data, last, func(r Record) {
			rec.Records = append(rec.Records, r)
		})
		if err != nil {
			return nil, err
		}
		if tornOff >= 0 {
			// Torn final record: everything before the tear is intact;
			// truncate the tail so the tear can never be misread later.
			if err := l.fs.Truncate(path, tornOff); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", segName(start), err)
			}
			rec.TornTruncated = true
			rec.TornOffset = tornOff
			logger.Warn("wal: truncated torn final record",
				"segment", segName(start), "offset", tornOff, "records_kept", n)
		}
		l.segCount++
	}
	return rec, nil
}

// scanSegment decodes every record in data, verifying the chain as it
// goes, and calls emit for each record of every *complete* atomic batch.
// It returns the committed record count and, when a torn tail was found
// (last segment only), the byte offset to truncate at; tornOff is -1
// otherwise. A tear inside an atomic batch truncates back to the batch's
// first record — an interrupted AppendBatch leaves either the whole
// group or none of it. Corruption of fully present bytes is an error.
func (l *Log) scanSegment(name string, data []byte, lastSegment bool, emit func(Record)) (int, int64, error) {
	var off int64
	count := 0
	batchStart := int64(0)
	var pending []Record
	tentSeq, tentChain := l.seq, l.chain
	for {
		if len(pending) == 0 {
			batchStart = off
		}
		r, next, ok, err := decodeRecord(data, off)
		if err != nil {
			de := err.(*decodeErr)
			if lastSegment && de.torn {
				return count, batchStart, nil
			}
			return count, -1, fmt.Errorf("wal: segment %s: %w "+
				"(mid-log corruption refuses recovery; run `placemon fsck` to inspect)", name, err)
		}
		if !ok {
			if len(pending) == 0 {
				return count, -1, nil
			}
			if !lastSegment {
				return count, -1, fmt.Errorf("wal: segment %s: atomic batch at offset %d has no terminator "+
					"(mid-log corruption refuses recovery; run `placemon fsck` to inspect)", name, batchStart)
			}
			// The data ends at a record boundary inside a batch: same
			// torn-tail treatment, cutting the whole group.
			return count, batchStart, nil
		}
		if err := verifyChain(tentChain, tentSeq+1, r, off); err != nil {
			return count, -1, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		tentSeq, tentChain = r.Seq, r.Hash
		pending = append(pending, r)
		if !r.cont {
			for _, p := range pending {
				emit(p)
			}
			count += len(pending)
			pending = pending[:0]
			l.seq, l.chain = tentSeq, tentChain
		}
		off = next
	}
}

// readSnapshot loads and integrity-checks one snapshot file.
func (l *Log) readSnapshot(upTo uint64) (*snapshotFile, error) {
	name := snapName(upTo)
	data, err := readAll(l.fs, filepath.Join(l.dir, name))
	if err != nil {
		return nil, fmt.Errorf("wal: read snapshot %s: %w", name, err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: %w", name, err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("wal: snapshot %s: unsupported version %d", name, snap.Version)
	}
	if snap.Seq != upTo {
		return nil, fmt.Errorf("wal: snapshot %s claims seq %d", name, snap.Seq)
	}
	sum := sha256.Sum256(snap.State)
	if got := hex.EncodeToString(sum[:]); got != snap.StateSum {
		return nil, fmt.Errorf("wal: snapshot %s: state checksum mismatch", name)
	}
	return &snap, nil
}

func readAll(fs FS, path string) ([]byte, error) {
	f, err := fs.OpenRead(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// openSegment creates the active segment whose first record will be
// start. Caller holds l.mu (or runs before concurrency starts).
func (l *Log) openSegment(start uint64) error {
	path := filepath.Join(l.dir, segName(start))
	f, err := l.fs.Create(path)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f = f
	l.segPath = path
	l.segBytes = 0
	l.segCount++
	return nil
}

func (l *Log) closeFileLocked() {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}

// fail poisons the log: every later operation returns the first error.
// Group-commit waiters are woken with it.
func (l *Log) fail(err error) error {
	if l.failed == nil {
		l.failed = err
	}
	l.flushMu.Lock()
	if l.syncErr == nil {
		l.syncErr = l.failed
	}
	l.flushCond.Broadcast()
	l.flushMu.Unlock()
	return l.failed
}

// Append appends one record and returns once it is durable under the
// configured sync policy.
func (l *Log) Append(typ byte, payload []byte) (AppendResult, error) {
	res, err := l.AppendBatch([]Op{{Type: typ, Payload: payload}})
	if err != nil {
		return AppendResult{}, err
	}
	return res[0], nil
}

// AppendBatch appends ops back to back with one write (and, under
// SyncAlways/SyncGroup, one fsync covering them all). The records are
// contiguous in the log; no other append interleaves.
func (l *Log) AppendBatch(ops []Op) ([]AppendResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	for _, op := range ops {
		if len(op.Payload) > MaxPayload {
			return nil, fmt.Errorf("wal: payload %d bytes exceeds cap %d", len(op.Payload), MaxPayload)
		}
	}
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return nil, err
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return nil, err
		}
	}
	buf := l.encBuf[:0]
	results := make([]AppendResult, len(ops))
	seq, chain := l.seq, l.chain
	for i, op := range ops {
		seq++
		// All but the last record carry the continuation flag, making the
		// batch atomic under torn-tail recovery.
		buf, chain = appendRecord(buf, chain, seq, op.Type, i < len(ops)-1, op.Payload)
		results[i] = AppendResult{Seq: seq, Hash: chain}
	}
	n, err := l.f.Write(buf)
	l.segBytes += int64(n)
	l.encBuf = buf[:0]
	if err != nil {
		err = l.fail(fmt.Errorf("wal: append: %w", err))
		l.mu.Unlock()
		return nil, err
	}
	l.seq, l.chain = seq, chain
	mode := l.opts.Sync
	if mode == SyncAlways {
		err := l.syncLocked()
		l.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return results, nil
	}
	l.mu.Unlock()
	if mode == SyncGroup {
		if err := l.waitSynced(seq); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// syncLocked fsyncs the active segment under l.mu, feeding the fsync
// observer and advancing the group-commit watermark.
func (l *Log) syncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	if l.opts.OnFsync != nil {
		l.opts.OnFsync(time.Since(start))
	}
	if err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.flushMu.Lock()
	if l.seq > l.syncedSeq {
		l.syncedSeq = l.seq
	}
	l.flushCond.Broadcast()
	l.flushMu.Unlock()
	return nil
}

// waitSynced blocks until the group-commit watermark covers target. The
// first blocked appender becomes the flush leader: it waits GroupWindow
// for co-committers, fsyncs once, and wakes everyone.
func (l *Log) waitSynced(target uint64) error {
	l.flushMu.Lock()
	for {
		if l.syncErr != nil {
			err := l.syncErr
			l.flushMu.Unlock()
			return err
		}
		if l.syncedSeq >= target {
			l.flushMu.Unlock()
			return nil
		}
		if l.flushing {
			l.flushCond.Wait()
			continue
		}
		l.flushing = true
		l.flushMu.Unlock()

		if w := l.opts.GroupWindow; w > 0 {
			time.Sleep(w)
		}
		l.mu.Lock()
		var err error
		if l.failed != nil {
			err = l.failed
		} else if l.f != nil {
			err = l.syncLocked()
		}
		l.mu.Unlock()

		l.flushMu.Lock()
		l.flushing = false
		if err != nil && l.syncErr == nil {
			l.syncErr = err
		}
		l.flushCond.Broadcast()
	}
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one. Records in sealed segments are durable by construction.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return l.fail(fmt.Errorf("wal: seal segment: %w", err))
	}
	l.f = nil
	if err := l.openSegment(l.seq + 1); err != nil {
		return l.fail(err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return l.fail(fmt.Errorf("wal: sync dir: %w", err))
	}
	return nil
}

// Compact folds the caller's state document — which must describe the
// state after applying every record up to the moment of the call, with
// no appends racing it — into a snapshot, then removes the sealed
// segments it supersedes. After Compact, recovery is snapshot + active
// tail only.
func (l *Log) Compact(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.segBytes > 0 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	upTo := l.seq
	sum := sha256.Sum256(state)
	doc, err := json.Marshal(snapshotFile{
		Version:  1,
		Seq:      upTo,
		Chain:    hex.EncodeToString(l.chain[:]),
		StateSum: hex.EncodeToString(sum[:]),
		State:    state,
	})
	if err != nil {
		return fmt.Errorf("wal: encode snapshot: %w", err)
	}
	tmp := filepath.Join(l.dir, ".tmp-"+snapName(upTo))
	f, err := l.fs.Create(tmp)
	if err != nil {
		return l.fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	if _, err := f.Write(doc); err != nil {
		f.Close()
		return l.fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return l.fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		return l.fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	if err := l.fs.Rename(tmp, filepath.Join(l.dir, snapName(upTo))); err != nil {
		return l.fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return l.fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	// The snapshot is durable; everything it folded is garbage. A crash
	// between here and the end is cleaned up by the next Open.
	l.snapSeq = upTo
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return l.fail(fmt.Errorf("wal: compact cleanup: %w", err))
	}
	for _, name := range names {
		if n, ok := parseSeqName(name, snapExt); ok && n != upTo {
			if err := l.fs.Remove(filepath.Join(l.dir, name)); err != nil {
				return l.fail(fmt.Errorf("wal: compact cleanup: %w", err))
			}
		} else if n, ok := parseSeqName(name, segExt); ok && n <= upTo {
			if err := l.fs.Remove(filepath.Join(l.dir, name)); err != nil {
				return l.fail(fmt.Errorf("wal: compact cleanup: %w", err))
			}
			l.segCount--
		}
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return l.fail(fmt.Errorf("wal: compact cleanup: %w", err))
	}
	l.opts.Logger.Info("wal: compacted", "up_to_seq", upTo, "segments", l.segCount)
	return nil
}

// Close fsyncs and closes the active segment. The log is unusable
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.failed == nil {
		err = l.syncLocked()
	}
	l.closeFileLocked()
	if l.failed == nil {
		l.failed = ErrClosed
	}
	l.flushMu.Lock()
	if l.syncErr == nil {
		l.syncErr = l.failed
	}
	l.flushCond.Broadcast()
	l.flushMu.Unlock()
	return err
}

// Abort closes the log without a final fsync — the in-process stand-in
// for kill -9 in crash tests and emergency shutdown paths. Durability is
// whatever the sync policy already provided.
func (l *Log) Abort() {
	l.mu.Lock()
	l.closeFileLocked()
	if l.failed == nil {
		l.failed = ErrClosed
	}
	l.mu.Unlock()
	l.flushMu.Lock()
	if l.syncErr == nil {
		l.syncErr = ErrClosed
	}
	l.flushCond.Broadcast()
	l.flushMu.Unlock()
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the sequence of the most recently appended record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SegmentCount returns how many segment files the log currently spans
// (sealed plus active), the feed for placemond_wal_segment_count.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segCount
}

// SnapshotSeq returns the sequence of the last compaction fold.
func (l *Log) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapSeq
}

// Err returns the sticky failure that poisoned the log, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if errors.Is(l.failed, ErrClosed) {
		return nil
	}
	return l.failed
}

// Verify walks the log on disk — snapshot integrity, record CRCs, the
// full hash chain — and returns the report. Appends are blocked for the
// duration; meant for the audit endpoint and tests, not the hot path.
func (l *Log) Verify() (*Report, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return check(l.dir, l.fs, false, nil)
}

// head returns the current chain head and sequence (for audit reports).
func (l *Log) head() (uint64, [HashSize]byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.chain
}

// HeadHex returns the current chain head as (seq, hex hash).
func (l *Log) HeadHex() (uint64, string) {
	seq, h := l.head()
	return seq, hex.EncodeToString(h[:])
}
