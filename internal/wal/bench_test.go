package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the append hot path per sync policy —
// the cost every acknowledged mutation pays before its HTTP response.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []SyncMode{SyncNone, SyncGroup, SyncAlways} {
		b.Run(mode.String(), func(b *testing.B) {
			dir := b.TempDir()
			l, _, err := Open(dir, Options{Sync: mode, SegmentBytes: 64 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, 256)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(TypeObservations, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures boot-time replay of a log tail — the
// daemon's crash-to-serving latency driver.
func BenchmarkRecovery(b *testing.B) {
	for _, records := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			l, _, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 4 << 20})
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 256)
			for i := 0; i < records; i++ {
				if _, err := l.Append(TypeObservations, payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l2, rec, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(rec.Records) != records {
					b.Fatalf("recovered %d", len(rec.Records))
				}
				l2.Abort()
			}
		})
	}
}
