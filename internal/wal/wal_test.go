package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openTest(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTest(t, dir, Options{Sync: SyncAlways})
	if rec.SnapshotSeq != 0 || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered non-empty: %+v", rec)
	}
	var want []string
	for i := 0; i < 25; i++ {
		payload := []byte(fmt.Sprintf("payload-%d", i))
		res, err := l.Append(TypeObservations, payload)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if res.Seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, res.Seq)
		}
		want = append(want, string(payload))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec2 := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i, r := range rec2.Records {
		if string(r.Payload) != want[i] {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want[i])
		}
		if r.Type != TypeObservations {
			t.Fatalf("record %d type %d", i, r.Type)
		}
	}
	if rec2.TornTruncated {
		t.Fatal("clean log reported torn")
	}
	if got := l2.LastSeq(); got != 25 {
		t.Fatalf("recovered LastSeq %d, want 25", got)
	}
	// Appends continue the chain seamlessly after recovery.
	res, err := l2.Append(TypeDiagnosis, []byte("after"))
	if err != nil || res.Seq != 26 {
		t.Fatalf("post-recovery append: seq %d err %v", res.Seq, err)
	}
}

func TestRotationAndRecoveryAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several rotations.
	l, _ := openTest(t, dir, Options{SegmentBytes: 4 << 10, Sync: SyncNone})
	payload := make([]byte, 512)
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append(TypeObservations, payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if sc := l.SegmentCount(); sc < 3 {
		t.Fatalf("expected several segments, got %d", sc)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), n)
	}
}

func TestCompactionFoldsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{SegmentBytes: 4 << 10, Sync: SyncNone})
	payload := make([]byte, 256)
	for i := 0; i < 30; i++ {
		if _, err := l.Append(TypeObservations, payload); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	state := []byte(`{"applied":30}`)
	if err := l.Compact(state); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if sc := l.SegmentCount(); sc != 1 {
		t.Fatalf("segments after compact = %d, want 1 (active only)", sc)
	}
	// Tail records after the fold.
	for i := 0; i < 5; i++ {
		if _, err := l.Append(TypeDiagnosis, []byte("tail")); err != nil {
			t.Fatalf("tail append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	if rec.SnapshotSeq != 30 {
		t.Fatalf("snapshot seq %d, want 30", rec.SnapshotSeq)
	}
	if string(rec.SnapshotState) != string(state) {
		t.Fatalf("snapshot state %q, want %q", rec.SnapshotState, state)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("tail records %d, want 5", len(rec.Records))
	}
	if rec.Records[0].Seq != 31 {
		t.Fatalf("first tail seq %d, want 31", rec.Records[0].Seq)
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	for _, cut := range []int64{1, 3, 7, 20, 45} {
		dir := t.TempDir()
		l, _ := openTest(t, dir, Options{Sync: SyncAlways})
		if _, err := l.Append(TypeObservations, []byte("whole")); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(TypeObservations, []byte("gets torn")); err != nil {
			t.Fatal(err)
		}
		l.Abort()

		// Tear the final record: cut `cut` bytes off the segment.
		seg := filepath.Join(dir, segName(1))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-cut); err != nil {
			t.Fatal(err)
		}

		l2, rec := openTest(t, dir, Options{})
		if !rec.TornTruncated {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "whole" {
			t.Fatalf("cut=%d: recovered %d records", cut, len(rec.Records))
		}
		// The torn bytes are gone for good: append + re-recover is clean.
		if _, err := l2.Append(TypeObservations, []byte("resume")); err != nil {
			t.Fatalf("cut=%d: resume append: %v", cut, err)
		}
		l2.Close()
		l3, rec3 := openTest(t, dir, Options{})
		if rec3.TornTruncated || len(rec3.Records) != 2 {
			t.Fatalf("cut=%d: second recovery torn=%v n=%d", cut, rec3.TornTruncated, len(rec3.Records))
		}
		l3.Close()
	}
}

func TestTornBatchDroppedWhole(t *testing.T) {
	// An AppendBatch is atomic under torn-tail recovery: a tear anywhere
	// inside the group — even at an exact record boundary — drops the
	// whole group, never a prefix of it. frame = 50 + len(payload) bytes.
	for _, cut := range []int64{10, 57, 57 + 58, 57 + 30} {
		dir := t.TempDir()
		l, _ := openTest(t, dir, Options{Sync: SyncAlways})
		if _, err := l.Append(TypeObservations, []byte("solo")); err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendBatch([]Op{
			{Type: TypeObservations, Payload: []byte("b-first")}, // 57-byte frame
			{Type: TypeDiagnosis, Payload: []byte("b-second")},   // 58-byte frame
			{Type: TypeDiagnosis, Payload: []byte("b-third")},    // 57-byte frame
		}); err != nil {
			t.Fatal(err)
		}
		l.Abort()

		seg := filepath.Join(dir, segName(1))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-cut); err != nil {
			t.Fatal(err)
		}

		l2, rec := openTest(t, dir, Options{})
		if !rec.TornTruncated {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "solo" {
			t.Fatalf("cut=%d: want only the pre-batch record, got %d records", cut, len(rec.Records))
		}
		if got := l2.LastSeq(); got != 1 {
			t.Fatalf("cut=%d: LastSeq = %d, want 1", cut, got)
		}
		// The log stays consistent: a fresh batch lands at seq 2 and a
		// clean re-recovery sees all four records.
		if _, err := l2.AppendBatch([]Op{
			{Type: TypeObservations, Payload: []byte("retry-1")},
			{Type: TypeDiagnosis, Payload: []byte("retry-2")},
			{Type: TypeDiagnosis, Payload: []byte("retry-3")},
		}); err != nil {
			t.Fatalf("cut=%d: retry batch: %v", cut, err)
		}
		l2.Close()
		l3, rec3 := openTest(t, dir, Options{})
		if rec3.TornTruncated || len(rec3.Records) != 4 {
			t.Fatalf("cut=%d: second recovery torn=%v n=%d", cut, rec3.TornTruncated, len(rec3.Records))
		}
		if _, err := Check(dir, false); err != nil {
			t.Fatalf("cut=%d: fsck after recovery: %v", cut, err)
		}
		l3.Close()
	}
}

func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(TypeObservations, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Abort()

	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the file.
	tampered := append([]byte(nil), data...)
	tampered[len(tampered)/2] ^= 0x40
	if err := os.WriteFile(seg, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Options{})
	if err == nil {
		t.Fatal("open accepted a flipped bit mid-log")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("corruption error carries no offset: %v", err)
	}
	// fsck sees the same thing with a non-nil error.
	if _, cerr := Check(dir, false); cerr == nil {
		t.Fatal("Check accepted a flipped bit")
	}
}

func TestSnapshotTamperRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(TypeObservations, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact([]byte(`{"s":1}`)); err != nil {
		t.Fatal(err)
	}
	l.Abort()
	snap := filepath.Join(dir, snapName(5))
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a tampered snapshot")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{Sync: SyncGroup, GroupWindow: 1e6 /* 1ms */})
	defer l.Close()
	const workers, each = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(TypeObservations, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("group append: %v", err)
	}
	if got := l.LastSeq(); got != workers*each {
		t.Fatalf("LastSeq %d, want %d", got, workers*each)
	}
	rep, err := l.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.Records != workers*each {
		t.Fatalf("verify saw %d records, want %d", rep.Records, workers*each)
	}
}

func TestAppendBatchAtomicOrder(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{Sync: SyncAlways})
	res, err := l.AppendBatch([]Op{
		{Type: TypeObservations, Payload: []byte("batch")},
		{Type: TypeDiagnosis, Payload: []byte("event-1")},
		{Type: TypeDiagnosis, Payload: []byte("event-2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Seq != 1 || res[2].Seq != 3 {
		t.Fatalf("batch results %+v", res)
	}
	l.Close()
	_, rec := openTest(t, dir, Options{})
	if len(rec.Records) != 3 || rec.Records[1].Type != TypeDiagnosis {
		t.Fatalf("recovered batch wrong: %+v", rec.Records)
	}
}

func TestCheckReport(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{Sync: SyncAlways})
	l.Append(TypeScenarioCreate, []byte("create"))
	l.Append(TypeObservations, []byte("obs"))
	l.Append(TypeObservations, []byte("obs"))
	l.Append(TypeDiagnosis, []byte("diag"))
	wantSeq, wantHead := l.HeadHex()
	l.Close()

	rep, err := Check(dir, false)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if rep.Records != 4 || rep.FirstSeq != 1 || rep.LastSeq != wantSeq {
		t.Fatalf("report %+v", rep)
	}
	if rep.ChainHead != wantHead {
		t.Fatalf("chain head %s, want %s", rep.ChainHead, wantHead)
	}
	if rep.TypeCounts["observations"] != 2 || rep.TypeCounts["diagnosis"] != 1 {
		t.Fatalf("type counts %+v", rep.TypeCounts)
	}
}

func TestCheckRepairTruncatesTorn(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{Sync: SyncAlways})
	l.Append(TypeObservations, []byte("keep"))
	l.Append(TypeObservations, []byte("torn"))
	l.Abort()
	seg := filepath.Join(dir, segName(1))
	fi, _ := os.Stat(seg)
	os.Truncate(seg, fi.Size()-5)

	rep, err := Check(dir, false)
	if err != nil || !rep.Torn || rep.Repaired {
		t.Fatalf("dry-run check: rep=%+v err=%v", rep, err)
	}
	rep, err = Check(dir, true)
	if err != nil || !rep.Torn || !rep.Repaired {
		t.Fatalf("repair check: rep=%+v err=%v", rep, err)
	}
	rep, err = Check(dir, false)
	if err != nil || rep.Torn {
		t.Fatalf("post-repair check: rep=%+v err=%v", rep, err)
	}
	if rep.Records != 1 {
		t.Fatalf("post-repair records %d, want 1", rep.Records)
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"always": SyncAlways, "": SyncAlways, "group": SyncGroup, "none": SyncNone} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestReadOnlyAfterFailureSticky(t *testing.T) {
	dir := t.TempDir()
	fs := NewCrashFSBudget(OSFS{}, 200) // enough for open + a couple of appends
	l, _, err := Open(dir, Options{Sync: SyncAlways, FS: fs})
	if err != nil {
		t.Fatalf("open under budget: %v", err)
	}
	var firstErr error
	for i := 0; i < 100; i++ {
		if _, err := l.Append(TypeObservations, []byte("spend the budget")); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("budget never exhausted")
	}
	// Poisoned: every later operation reports the original failure.
	if _, err := l.Append(TypeObservations, []byte("more")); err == nil {
		t.Fatal("append succeeded after failure")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after failure")
	}
}
