package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record types. The WAL itself treats payloads as opaque; the constants
// live here so the serving layer and the offline fsck report agree on
// names without importing each other.
const (
	// TypeScenarioCreate carries a scenario ID plus its spec document.
	TypeScenarioCreate byte = 1
	// TypeScenarioDelete carries a scenario ID.
	TypeScenarioDelete byte = 2
	// TypeObservations carries one accepted observation batch (the
	// pre-apply inputs; replaying them through the monitor regenerates
	// the response bytes, so dedup replays stay byte-exact).
	TypeObservations byte = 3
	// TypeDiagnosis carries one emitted monitoring event — the
	// tamper-evident audit record of a localization decision.
	TypeDiagnosis byte = 4
	// TypeScenarioUpdate carries a scenario ID plus its revised spec
	// document: an in-place network replacement (PUT .../network) that
	// preserves the scenario's dedup window and audit ledger.
	TypeScenarioUpdate byte = 5
	// TypeScenarioMigrateOut fences a live migration on the source node:
	// it carries the full migration document (spec + replayable state), so
	// even a handoff interrupted between fence and transfer loses nothing
	// recoverable, and after it replays the scenario is no longer owned
	// here — it is relocated to the named target node.
	TypeScenarioMigrateOut byte = 6
	// TypeScenarioMigrateIn adopts a migrated scenario on the target node:
	// the same migration document plus the source log's chain head at the
	// fence, splicing the scenario's audit hash chain verifiably across
	// the two nodes' logs.
	TypeScenarioMigrateIn byte = 7
)

// TypeName renders a record type for reports and logs.
func TypeName(t byte) string {
	switch t {
	case TypeScenarioCreate:
		return "scenario-create"
	case TypeScenarioDelete:
		return "scenario-delete"
	case TypeObservations:
		return "observations"
	case TypeDiagnosis:
		return "diagnosis"
	case TypeScenarioUpdate:
		return "scenario-update"
	case TypeScenarioMigrateOut:
		return "scenario-migrate-out"
	case TypeScenarioMigrateIn:
		return "scenario-migrate-in"
	default:
		return fmt.Sprintf("type-%d", t)
	}
}

// HashSize is the size of the chain hash carried by every record.
const HashSize = sha256.Size

// MaxPayload bounds one record's payload; a length prefix claiming more
// is a lie (bit flip or foreign file), not a huge record.
const MaxPayload = 8 << 20

// Wire format of one record ("frame"):
//
//	[4] body length N, little endian
//	[N] body = [8] seq LE | [1] type | [1] flags | payload | [32] chain hash
//	[4] CRC32C (Castagnoli) over the body
//
// The chain hash is SHA-256(prev record's chain hash || seq LE || type ||
// flags || payload); the first record chains from 32 zero bytes (or,
// after compaction, from the snapshot's recorded head). The CRC detects
// corruption record-locally; the chain makes the whole history
// tamper-evident — flipping any bit (payload or hash) breaks every later
// link.
//
// The flags byte frames atomic batches: flagContinues marks a record
// whose AppendBatch group continues with the next record, so recovery
// can truncate an interrupted append at the batch boundary — either the
// whole group survives or none of it does. A batch never spans segments.
const (
	frameHeader = 4
	bodyMin     = 8 + 1 + 1 + HashSize
	frameCRC    = 4

	// flagContinues marks a non-final record of an atomic batch.
	flagContinues = 0x01
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded WAL entry.
type Record struct {
	Seq     uint64
	Type    byte
	Payload []byte
	Hash    [HashSize]byte
	// cont marks a non-final record of an atomic batch (flagContinues).
	cont bool
}

// chainHash computes the record hash linking payload to prev.
func chainHash(prev [HashSize]byte, seq uint64, typ, flags byte, payload []byte) [HashSize]byte {
	h := sha256.New()
	h.Write(prev[:])
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	h.Write(seqBuf[:])
	h.Write([]byte{typ, flags})
	h.Write(payload)
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// appendRecord encodes one record onto buf and returns the extended
// buffer plus the record's chain hash. cont marks a non-final record of
// an atomic batch.
func appendRecord(buf []byte, prev [HashSize]byte, seq uint64, typ byte, cont bool, payload []byte) ([]byte, [HashSize]byte) {
	var flags byte
	if cont {
		flags = flagContinues
	}
	hash := chainHash(prev, seq, typ, flags, payload)
	bodyLen := bodyMin + len(payload)
	var lenBuf [frameHeader]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(bodyLen))
	buf = append(buf, lenBuf[:]...)
	bodyStart := len(buf)
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	buf = append(buf, seqBuf[:]...)
	buf = append(buf, typ, flags)
	buf = append(buf, payload...)
	buf = append(buf, hash[:]...)
	crc := crc32.Checksum(buf[bodyStart:], castagnoli)
	var crcBuf [frameCRC]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc)
	return append(buf, crcBuf[:]...), hash
}

// decodeErr classifies a decode failure: torn means the frame runs past
// the end of the data (the signature of an interrupted append — every
// byte present is a prefix of what the writer intended), anything else is
// corruption of fully present bytes.
type decodeErr struct {
	offset int64
	torn   bool
	reason string
}

func (e *decodeErr) Error() string {
	kind := "corrupt record"
	if e.torn {
		kind = "torn record"
	}
	return fmt.Sprintf("wal: %s at offset %d: %s", kind, e.offset, e.reason)
}

// decodeRecord decodes the record starting at data[off:]. It returns the
// record and the offset just past its frame. A nil error with ok=false
// means a clean end of data (off == len(data)); otherwise err is a
// *decodeErr.
func decodeRecord(data []byte, off int64) (rec Record, next int64, ok bool, err error) {
	rest := data[off:]
	if len(rest) == 0 {
		return rec, off, false, nil
	}
	if len(rest) < frameHeader {
		return rec, off, false, &decodeErr{offset: off, torn: true,
			reason: fmt.Sprintf("%d-byte partial length prefix", len(rest))}
	}
	bodyLen := binary.LittleEndian.Uint32(rest)
	if bodyLen < bodyMin {
		return rec, off, false, &decodeErr{offset: off,
			reason: fmt.Sprintf("body length %d below record minimum %d", bodyLen, bodyMin)}
	}
	if bodyLen > bodyMin+MaxPayload {
		return rec, off, false, &decodeErr{offset: off,
			reason: fmt.Sprintf("body length %d exceeds payload cap", bodyLen)}
	}
	frameLen := int64(frameHeader) + int64(bodyLen) + frameCRC
	if int64(len(rest)) < frameLen {
		return rec, off, false, &decodeErr{offset: off, torn: true,
			reason: fmt.Sprintf("frame needs %d bytes, %d present", frameLen, len(rest))}
	}
	body := rest[frameHeader : frameHeader+bodyLen]
	wantCRC := binary.LittleEndian.Uint32(rest[frameHeader+bodyLen:])
	if crc := crc32.Checksum(body, castagnoli); crc != wantCRC {
		return rec, off, false, &decodeErr{offset: off,
			reason: fmt.Sprintf("CRC mismatch (stored %08x, computed %08x)", wantCRC, crc)}
	}
	rec.Seq = binary.LittleEndian.Uint64(body)
	rec.Type = body[8]
	flags := body[9]
	if flags&^flagContinues != 0 {
		return rec, off, false, &decodeErr{offset: off,
			reason: fmt.Sprintf("unknown flag bits %02x", flags&^flagContinues)}
	}
	rec.cont = flags&flagContinues != 0
	rec.Payload = append([]byte(nil), body[10:len(body)-HashSize]...)
	copy(rec.Hash[:], body[len(body)-HashSize:])
	return rec, off + frameLen, true, nil
}

// verifyChain checks that rec extends the chain ending in prev; it
// returns the error to surface (nil when the link holds).
func verifyChain(prev [HashSize]byte, wantSeq uint64, rec Record, off int64) error {
	if rec.Seq != wantSeq {
		return &decodeErr{offset: off,
			reason: fmt.Sprintf("sequence gap: record %d where %d expected", rec.Seq, wantSeq)}
	}
	var flags byte
	if rec.cont {
		flags = flagContinues
	}
	if want := chainHash(prev, rec.Seq, rec.Type, flags, rec.Payload); want != rec.Hash {
		return &decodeErr{offset: off,
			reason: fmt.Sprintf("hash chain broken at record %d", rec.Seq)}
	}
	return nil
}
