package wal

import (
	"errors"
	"io"
	"math/rand"
	"sync"
)

// ErrCrashed is what every CrashFS operation returns once the injected
// crash point is reached: the process "died" and its storage is frozen.
var ErrCrashed = errors.New("wal: injected crash")

// CrashFS wraps an FS with a seeded byte budget, in the spirit of
// internal/faultinject's deterministic policy engine: every write
// consumes budget byte by byte and every metadata operation (create,
// rename, remove, truncate, sync, dir sync) consumes one unit, so the
// crash can land mid-append — leaving a torn record — or between the
// steps of a rotation or compaction. When the budget runs out, the
// current write is cut short at the exact exhaustion offset and every
// later operation fails with ErrCrashed; whatever reached the inner FS
// before that moment is exactly what a real kill would have left behind.
//
// Reads are never charged or blocked: recovery inspects the frozen
// remains through the same wrapper.
type CrashFS struct {
	inner FS

	mu      sync.Mutex
	budget  int64
	spent   int64
	crashed bool
}

// NewCrashFS wraps inner with a budget drawn from rng in [1, maxBudget].
func NewCrashFS(inner FS, rng *rand.Rand, maxBudget int64) *CrashFS {
	if maxBudget < 1 {
		maxBudget = 1
	}
	return &CrashFS{inner: inner, budget: 1 + rng.Int63n(maxBudget)}
}

// NewCrashFSBudget wraps inner with an exact budget (for replaying a
// specific crash point).
func NewCrashFSBudget(inner FS, budget int64) *CrashFS {
	return &CrashFS{inner: inner, budget: budget}
}

// Crashed reports whether the budget has been exhausted.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Spent returns how many budget units have been charged so far. A crash
// harness runs one reference life with an effectively unlimited budget,
// reads Spent, and draws per-seed budgets from [1, Spent] so every
// injected crash lands inside the workload.
func (c *CrashFS) Spent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spent
}

// Disarm lifts the crash injection: the wrapper passes everything
// through untouched from now on. Crash tests call this before the
// recovery run so only the first life is fault-injected.
func (c *CrashFS) Disarm() {
	c.mu.Lock()
	c.crashed = false
	c.budget = 1 << 62
	c.mu.Unlock()
}

// spend charges n units and reports how many were granted; granted < n
// means the crash landed inside this operation.
func (c *CrashFS) spend(n int64) (granted int64, crashed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, true
	}
	if c.budget >= n {
		c.budget -= n
		c.spent += n
		return n, false
	}
	granted = c.budget
	c.budget = 0
	c.spent += granted
	c.crashed = true
	return granted, true
}

func (c *CrashFS) meta(op func() error) error {
	if _, crashed := c.spend(1); crashed {
		return ErrCrashed
	}
	return op()
}

// MkdirAll implements FS (uncharged: directory creation happens once at
// boot, before the life being tested).
func (c *CrashFS) MkdirAll(dir string) error {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return c.inner.MkdirAll(dir)
}

// Create implements FS.
func (c *CrashFS) Create(name string) (File, error) {
	var f File
	err := c.meta(func() error {
		var err error
		f, err = c.inner.Create(name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, inner: f}, nil
}

// OpenRead implements FS; reads are free so recovery can run.
func (c *CrashFS) OpenRead(name string) (io.ReadCloser, error) { return c.inner.OpenRead(name) }

// ReadDir implements FS; reads are free.
func (c *CrashFS) ReadDir(dir string) ([]string, error) { return c.inner.ReadDir(dir) }

// Remove implements FS.
func (c *CrashFS) Remove(name string) error {
	return c.meta(func() error { return c.inner.Remove(name) })
}

// Rename implements FS.
func (c *CrashFS) Rename(oldname, newname string) error {
	return c.meta(func() error { return c.inner.Rename(oldname, newname) })
}

// Truncate implements FS.
func (c *CrashFS) Truncate(name string, size int64) error {
	return c.meta(func() error { return c.inner.Truncate(name, size) })
}

// SyncDir implements FS.
func (c *CrashFS) SyncDir(dir string) error {
	return c.meta(func() error { return c.inner.SyncDir(dir) })
}

type crashFile struct {
	fs    *CrashFS
	inner File
}

// Write charges one budget unit per byte; on exhaustion it persists the
// granted prefix — the torn write — and reports the crash.
func (f *crashFile) Write(p []byte) (int, error) {
	granted, crashed := f.fs.spend(int64(len(p)))
	if granted > 0 {
		n, err := f.inner.Write(p[:granted])
		if err != nil {
			return n, err
		}
	}
	if crashed {
		return int(granted), ErrCrashed
	}
	return len(p), nil
}

func (f *crashFile) Sync() error {
	return f.fs.meta(func() error { return f.inner.Sync() })
}

// Close is free: a dying process's descriptors close anyway.
func (f *crashFile) Close() error { return f.inner.Close() }
