package wal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"path/filepath"
	"sort"
)

// Report is what an offline walk of a WAL directory found. It is the
// payload of `placemon fsck` and the audit endpoint's chain block.
type Report struct {
	Dir         string         `json:"dir,omitempty"`
	HasSnapshot bool           `json:"has_snapshot"`
	SnapshotSeq uint64         `json:"snapshot_seq"`
	Segments    int            `json:"segments"`
	Records     int            `json:"records"`
	FirstSeq    uint64         `json:"first_seq"`
	LastSeq     uint64         `json:"last_seq"`
	ChainHead   string         `json:"chain_head"`
	TypeCounts  map[string]int `json:"type_counts"`
	// Torn reports a torn final record (an interrupted append, not
	// tampering); Repaired is set when -repair truncated it.
	Torn        bool   `json:"torn"`
	TornSegment string `json:"torn_segment,omitempty"`
	TornOffset  int64  `json:"torn_offset,omitempty"`
	Repaired    bool   `json:"repaired,omitempty"`
	// Stale counts files superseded by the newest snapshot (left behind
	// by an interrupted compaction; harmless, cleaned at next open).
	Stale int `json:"stale,omitempty"`
}

// Check walks the WAL in dir offline — snapshot integrity, every record's
// CRC, the full hash chain — and returns the report. A torn final record
// is reported (and truncated when repair is set) but is not an error;
// corruption of fully present bytes is. The returned report is valid even
// when err != nil, describing what was verified before the failure.
func Check(dir string, repair bool) (*Report, error) {
	return check(dir, OSFS{}, repair, nil)
}

func check(dir string, fs FS, repair bool, logger *slog.Logger) (*Report, error) {
	rep := &Report{Dir: dir, TypeCounts: map[string]int{}}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return rep, fmt.Errorf("wal: read dir: %w", err)
	}
	var snaps, segs []uint64
	for _, name := range names {
		if n, ok := parseSeqName(name, snapExt); ok {
			snaps = append(snaps, n)
		} else if n, ok := parseSeqName(name, segExt); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	var chain [HashSize]byte
	var seq uint64
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		rep.Stale += len(snaps) - 1
		name := snapName(newest)
		data, err := readAll(fs, filepath.Join(dir, name))
		if err != nil {
			return rep, fmt.Errorf("wal: read snapshot %s: %w", name, err)
		}
		var snap snapshotFile
		if err := json.Unmarshal(data, &snap); err != nil {
			return rep, fmt.Errorf("wal: snapshot %s: %w", name, err)
		}
		if snap.Version != 1 {
			return rep, fmt.Errorf("wal: snapshot %s: unsupported version %d", name, snap.Version)
		}
		if snap.Seq != newest {
			return rep, fmt.Errorf("wal: snapshot %s claims seq %d", name, snap.Seq)
		}
		sum := sha256.Sum256(snap.State)
		if got := hex.EncodeToString(sum[:]); got != snap.StateSum {
			return rep, fmt.Errorf("wal: snapshot %s: state checksum mismatch", name)
		}
		ch, err := hex.DecodeString(snap.Chain)
		if err != nil || len(ch) != HashSize {
			return rep, fmt.Errorf("wal: snapshot %s: malformed chain head", name)
		}
		copy(chain[:], ch)
		rep.HasSnapshot = true
		rep.SnapshotSeq = snap.Seq
		seq = snap.Seq
	}

	live := segs[:0]
	for _, start := range segs {
		if start <= rep.SnapshotSeq && rep.HasSnapshot {
			rep.Stale++
			continue
		}
		live = append(live, start)
	}
	for i, start := range live {
		name := segName(start)
		path := filepath.Join(dir, name)
		if start != seq+1 {
			return rep, fmt.Errorf("wal: segment %s starts at %d where %d expected (missing segment?)",
				name, start, seq+1)
		}
		data, err := readAll(fs, path)
		if err != nil {
			return rep, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		rep.Segments++
		last := i == len(live)-1
		var off, batchStart int64
		var pending []Record
		tentSeq, tentChain := seq, chain
		// torn marks a truncation point: a frame cut mid-write, or an
		// atomic batch missing its terminator — either way the log is
		// valid up to batchStart and the tail past it must go.
		torn := func(cut int64) error {
			rep.Torn = true
			rep.TornSegment = name
			rep.TornOffset = cut
			if !repair {
				return nil
			}
			if terr := fs.Truncate(path, cut); terr != nil {
				return fmt.Errorf("wal: repair %s: %w", name, terr)
			}
			rep.Repaired = true
			if logger != nil {
				logger.Warn("wal: fsck truncated torn tail", "segment", name, "offset", cut)
			}
			return nil
		}
		for {
			if len(pending) == 0 {
				batchStart = off
			}
			r, next, ok, derr := decodeRecord(data, off)
			if derr != nil {
				de := derr.(*decodeErr)
				if last && de.torn {
					if terr := torn(batchStart); terr != nil {
						return rep, terr
					}
					break
				}
				return rep, fmt.Errorf("wal: segment %s: %w", name, derr)
			}
			if !ok {
				if len(pending) == 0 {
					break
				}
				if !last {
					return rep, fmt.Errorf("wal: segment %s: atomic batch at offset %d has no terminator",
						name, batchStart)
				}
				if terr := torn(batchStart); terr != nil {
					return rep, terr
				}
				break
			}
			if cerr := verifyChain(tentChain, tentSeq+1, r, off); cerr != nil {
				return rep, fmt.Errorf("wal: segment %s: %w", name, cerr)
			}
			tentSeq, tentChain = r.Seq, r.Hash
			pending = append(pending, r)
			if !r.cont {
				for _, p := range pending {
					if rep.Records == 0 {
						rep.FirstSeq = p.Seq
					}
					rep.Records++
					rep.TypeCounts[TypeName(p.Type)]++
				}
				pending = pending[:0]
				seq, chain = tentSeq, tentChain
			}
			off = next
		}
	}
	rep.LastSeq = seq
	rep.ChainHead = hex.EncodeToString(chain[:])
	return rep, nil
}
