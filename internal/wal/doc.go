// Package wal is an append-only, segmented write-ahead log with a
// tamper-evident hash chain, built for placemond's crash safety: every
// state-mutating operation is appended (and made durable under the
// configured sync policy) before its HTTP response is acknowledged, so a
// kill -9 loses at most the unacknowledged suffix. On boot, recovery
// replays the newest snapshot plus the log tail; a torn final record —
// the signature of an interrupted append — is truncated with a warning,
// while corruption of fully present bytes (bit flips, sequence gaps,
// broken hash links) refuses recovery loudly with the record offset.
//
// Records are length-prefixed and CRC32C-framed, and each carries
// SHA-256(prev hash || seq || type || payload), chaining the whole
// history: the log doubles as an audit ledger of the daemon's
// localization decisions (cf. the hash-chained batch ledgers of
// audit-log systems). The decisions being ledgered are the paper's:
// each logged observation batch is a set of end-to-end path states in
// the Section II-B model, and replaying the log reproduces the exact
// sequence of Section III-B tomography diagnoses the daemon emitted —
// recovery is deterministic because localization is a pure function of
// the observation history.
//
// Segment compaction folds everything up to a sequence number into a
// snapshot document owned by the caller and removes the sealed
// segments, bounding recovery time and disk use.
//
// The package depends only on the standard library. All Log methods are
// safe for concurrent use.
package wal
