package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes — truncations, bit flips, and
// length-prefix lies included — at the record decoder and the segment
// scanner. Neither may panic, over-read, loop forever, or accept a frame
// whose CRC does not hold.
func FuzzWALDecode(f *testing.F) {
	// Seed with real frames and mutations of them.
	var chain [HashSize]byte
	buf, h1 := appendRecord(nil, chain, 1, TypeObservations, true, []byte("seed payload"))
	buf, _ = appendRecord(buf, h1, 2, TypeDiagnosis, false, []byte("second"))
	f.Add(buf)
	f.Add(buf[:len(buf)-3])               // torn tail
	f.Add(buf[:3])                        // partial length prefix
	f.Add([]byte{})                       // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // length-prefix lie: 4 GiB
	lie := make([]byte, 8)
	binary.LittleEndian.PutUint32(lie, uint32(bodyMin+MaxPayload+1))
	f.Add(lie) // just over the payload cap
	flip := append([]byte(nil), buf...)
	flip[10] ^= 0x01
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		var off int64
		seen := 0
		for {
			r, next, ok, err := decodeRecord(data, off)
			if err != nil {
				de, isDecode := err.(*decodeErr)
				if !isDecode {
					t.Fatalf("non-decodeErr error: %v", err)
				}
				if de.offset != off {
					t.Fatalf("error offset %d, decode started at %d", de.offset, off)
				}
				return
			}
			if !ok {
				if off != int64(len(data)) {
					t.Fatalf("clean end at %d with %d bytes left", off, int64(len(data))-off)
				}
				return
			}
			if next <= off || next > int64(len(data)) {
				t.Fatalf("decoder stepped from %d to %d (len %d)", off, next, len(data))
			}
			// An accepted frame must survive re-encoding: same bytes, same
			// CRC discipline.
			re, _ := appendRecord(nil, [HashSize]byte{}, r.Seq, r.Type, r.cont, r.Payload)
			// Only the body-before-hash is comparable (the stored hash is
			// arbitrary attacker data until verifyChain runs); check the
			// frame's length bookkeeping instead of full equality.
			if int64(len(re)) != next-off {
				t.Fatalf("frame length %d re-encodes to %d", next-off, len(re))
			}
			// Payload must be a copy, not an alias into data.
			if len(r.Payload) > 0 {
				orig := append([]byte(nil), r.Payload...)
				for i := range data {
					data[i] ^= 0xff
				}
				if !bytes.Equal(r.Payload, orig) {
					t.Fatal("decoded payload aliases input buffer")
				}
				for i := range data {
					data[i] ^= 0xff
				}
			}
			seen++
			if seen > len(data) {
				t.Fatal("decoded more records than input bytes")
			}
			off = next
		}
	})
}
