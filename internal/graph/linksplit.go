package graph

import "fmt"

// SplitLinks implements the paper's Section II-A device for monitoring
// link failures with a node-failure model: every link {u, v} is replaced
// by a logical link-node L with edges u—L and L—v. A failure of L in the
// transformed graph is exactly a failure of the original link, so the
// whole monitoring stack (routing, placement, tomography) applies
// unchanged, now observing both node and link failures.
//
// The transformed graph has NumNodes()+NumEdges() nodes; original node
// IDs are preserved, and linkNodes[i] is the logical node of Edges()[i].
// Link-node edges inherit half the original weight each, preserving
// shortest-path structure (every original path doubles in weighted
// length, uniformly). Link nodes are labeled "link(u-v)".
func (g *Graph) SplitLinks() (*Graph, []NodeID) {
	n := g.NumNodes()
	edges := g.Edges()
	out := New(n + len(edges))
	for v := 0; v < n; v++ {
		out.SetLabel(v, g.Label(v))
	}
	linkNodes := make([]NodeID, len(edges))
	for i, e := range edges {
		l := n + i
		linkNodes[i] = l
		out.SetLabel(l, fmt.Sprintf("link(%s-%s)", g.Label(e.U), g.Label(e.V)))
		// Errors are impossible: the source graph is simple, every new
		// node touches exactly one original edge, and weights are halved
		// positives.
		if err := out.AddWeightedEdge(e.U, l, e.Weight/2); err != nil {
			panic(fmt.Sprintf("graph: split links: %v", err))
		}
		if err := out.AddWeightedEdge(l, e.V, e.Weight/2); err != nil {
			panic(fmt.Sprintf("graph: split links: %v", err))
		}
	}
	return out, linkNodes
}
