package graph

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// pathGraph returns 0-1-2-...-(n-1).
func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewGraph(t *testing.T) {
	g := New(3)
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Label(0) != "0" || g.Label(2) != "2" {
		t.Fatal("default labels should be decimal IDs")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop: %v", err)
	}
	if err := g.AddEdge(0, 3); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("range: %v", err)
	}
	if err := g.AddEdge(-1, 1); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("range: %v", err)
	}
	if err := g.AddWeightedEdge(0, 1, 0); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("weight: %v", err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); !errors.Is(err, ErrParallelEdge) {
		t.Fatalf("parallel: %v", err)
	}
}

func TestHasEdgeAndDegree(t *testing.T) {
	g := pathGraph(t, 4)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("no such edge")
	}
	if g.HasEdge(0, 99) || g.HasEdge(-1, 0) {
		t.Fatal("out of range HasEdge must be false")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatal("degrees wrong")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	for _, v := range []int{4, 2, 3} {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("Neighbors = %v", got)
	}
}

func TestDanglingNodes(t *testing.T) {
	// Star: center 0, leaves 1..4 → 4 dangling.
	g := New(5)
	for v := 1; v < 5; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.DanglingNodes(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("DanglingNodes = %v", got)
	}
}

func TestBFSDistances(t *testing.T) {
	g := pathGraph(t, 5)
	got := g.BFSDistances(0)
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("dist = %v", got)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	got := g.BFSDistances(0)
	if got[2] != -1 {
		t.Fatalf("unreachable should be -1, got %d", got[2])
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(30)
		g := New(n)
		// Random connected graph: spanning chain + extra edges.
		for i := 1; i < n; i++ {
			if err := g.AddEdge(rng.Intn(i), i); err != nil {
				t.Fatal(err)
			}
		}
		for tries := 0; tries < n; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		src := rng.Intn(n)
		bfs := g.BFSDistances(src)
		sp := g.Dijkstra(src)
		for v := 0; v < n; v++ {
			if int(sp.Dist[v]) != bfs[v] {
				t.Fatalf("trial %d: node %d: dijkstra %v != bfs %v", trial, v, sp.Dist[v], bfs[v])
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// 0-1 (w5), 0-2 (w1), 2-1 (w1): shortest 0→1 is via 2 with cost 2.
	g := New(3)
	if err := g.AddWeightedEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	sp := g.Dijkstra(0)
	if sp.Dist[1] != 2 {
		t.Fatalf("Dist[1] = %v, want 2", sp.Dist[1])
	}
	if got := sp.PathTo(1); !reflect.DeepEqual(got, []int{0, 2, 1}) {
		t.Fatalf("PathTo(1) = %v", got)
	}
}

func TestDijkstraDeterministicTieBreak(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-3, 2-3. Two shortest paths 0→3; the tie-break
	// must always choose predecessor 1 (the smaller ID).
	g := New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 10; trial++ {
		sp := g.Dijkstra(0)
		if got := sp.PathTo(3); !reflect.DeepEqual(got, []int{0, 1, 3}) {
			t.Fatalf("PathTo(3) = %v, want [0 1 3]", got)
		}
	}
}

func TestPathToSelfAndUnreachable(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	sp := g.Dijkstra(0)
	if got := sp.PathTo(0); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("PathTo(self) = %v", got)
	}
	if got := sp.PathTo(2); got != nil {
		t.Fatalf("PathTo(unreachable) = %v, want nil", got)
	}
	if got := sp.PathTo(99); got != nil {
		t.Fatalf("PathTo(out of range) = %v, want nil", got)
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	comps := g.Components()
	want := [][]int{{0, 1}, {2}, {3, 4}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("Components = %v, want %v", comps, want)
	}
	if g.Connected() {
		t.Fatal("graph should not be connected")
	}
}

func TestValidate(t *testing.T) {
	if err := New(0).Validate(); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("empty: %v", err)
	}
	if err := New(2).Validate(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("disconnected: %v", err)
	}
	g := pathGraph(t, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("connected path: %v", err)
	}
}

func TestConnectedEmptyGraph(t *testing.T) {
	if New(0).Connected() {
		t.Fatal("empty graph is not connected")
	}
	if !New(1).Connected() {
		t.Fatal("single node is connected")
	}
}

func TestClone(t *testing.T) {
	g := pathGraph(t, 4)
	g.SetLabel(2, "middle")
	c := g.Clone()
	if c.NumNodes() != 4 || c.NumEdges() != 3 {
		t.Fatal("clone shape wrong")
	}
	if c.Label(2) != "middle" {
		t.Fatal("clone should copy labels")
	}
	if err := c.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 3) {
		t.Fatal("clone must not alias")
	}
}

func TestEdgesCopy(t *testing.T) {
	g := pathGraph(t, 3)
	es := g.Edges()
	es[0].U = 99
	if g.Edges()[0].U == 99 {
		t.Fatal("Edges must return a copy")
	}
}

func TestDegreePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Degree(5)
}

func TestAddEdgeRejectsNaNAndInf(t *testing.T) {
	g := New(3)
	if err := g.AddWeightedEdge(0, 1, math.NaN()); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("NaN weight: %v", err)
	}
	if err := g.AddWeightedEdge(0, 1, math.Inf(1)); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("+Inf weight: %v", err)
	}
	if err := g.AddWeightedEdge(0, 1, math.Inf(-1)); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("-Inf weight: %v", err)
	}
}

func TestParseRejectsHugeNodeID(t *testing.T) {
	if _, err := Parse(strings.NewReader("edge 0 99999999\n")); err == nil {
		t.Fatal("huge node id should be rejected")
	}
	if _, err := Parse(strings.NewReader("node 99999999 far\n")); err == nil {
		t.Fatal("huge node record should be rejected")
	}
}
