package graph

import (
	"errors"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	src := `
# a comment
node 0 seattle
node 2 denver
edge 0 1
1 2
edge 0 2 2.5
`
	g, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Label(0) != "seattle" || g.Label(1) != "1" || g.Label(2) != "denver" {
		t.Fatalf("labels wrong: %q %q %q", g.Label(0), g.Label(1), g.Label(2))
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("missing weighted edge")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"bad id", "edge x 1"},
		{"negative id", "edge -1 2"},
		{"too many fields", "0 1 2 3"},
		{"bad weight", "edge 0 1 heavy"},
		{"node without label", "node 3"},
		{"bad node id", "node x foo"},
		{"self loop", "edge 1 1"},
		{"parallel", "edge 0 1\nedge 1 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.src)); err == nil {
				t.Fatalf("Parse(%q) should fail", c.src)
			}
		})
	}
}

func TestParseEmptyIsErrEmptyGraph(t *testing.T) {
	_, err := Parse(strings.NewReader("# only comments\n"))
	if !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("got %v, want ErrEmptyGraph", err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	g := New(4)
	g.SetLabel(1, "pop one")
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddWeightedEdge(0, 2, 3.5); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed shape")
	}
	if g2.Label(1) != "pop one" {
		t.Fatal("round trip lost label")
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("round trip lost edge %v", e)
		}
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("g")
	for _, want := range []string{"graph \"g\"", "0 -- 1"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestParseNodesDirective(t *testing.T) {
	g, err := Parse(strings.NewReader("nodes 5\nedge 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes())
	}
	for _, bad := range []string{"nodes\n", "nodes x\n", "nodes 0\n", "nodes -3\n"} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestWritePreservesIsolatedNodes(t *testing.T) {
	g := New(1)
	var buf strings.Builder
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if g2.NumNodes() != 1 {
		t.Fatalf("round trip nodes = %d, want 1", g2.NumNodes())
	}
}
