package graph

import (
	"strings"
	"testing"
)

func TestSplitLinksShape(t *testing.T) {
	g := pathGraph(t, 3) // 0-1-2
	split, linkNodes := g.SplitLinks()
	if split.NumNodes() != 5 { // 3 nodes + 2 link nodes
		t.Fatalf("nodes = %d, want 5", split.NumNodes())
	}
	if split.NumEdges() != 4 { // 2 per original edge
		t.Fatalf("edges = %d, want 4", split.NumEdges())
	}
	if len(linkNodes) != 2 {
		t.Fatalf("linkNodes = %v", linkNodes)
	}
	// Original adjacency is gone; links are relayed through link nodes.
	if split.HasEdge(0, 1) {
		t.Fatal("original edge should be removed")
	}
	edges := g.Edges()
	for i, e := range edges {
		l := linkNodes[i]
		if !split.HasEdge(e.U, l) || !split.HasEdge(l, e.V) {
			t.Fatalf("link node %d not wired to (%d, %d)", l, e.U, e.V)
		}
		if split.Degree(l) != 2 {
			t.Fatalf("link node degree = %d, want 2", split.Degree(l))
		}
		if !strings.HasPrefix(split.Label(l), "link(") {
			t.Fatalf("link label = %q", split.Label(l))
		}
	}
	if !split.Connected() {
		t.Fatal("split graph must stay connected")
	}
}

func TestSplitLinksPreservesShortestPathStructure(t *testing.T) {
	g := pathGraph(t, 4)
	split, _ := g.SplitLinks()
	spOrig := g.Dijkstra(0)
	spSplit := split.Dijkstra(0)
	for v := 0; v < g.NumNodes(); v++ {
		// Half-weight per sub-edge ⇒ identical distances between
		// original nodes.
		if spOrig.Dist[v] != spSplit.Dist[v] {
			t.Fatalf("distance to %d changed: %v → %v", v, spOrig.Dist[v], spSplit.Dist[v])
		}
	}
}

func TestSplitLinksPreservesLabels(t *testing.T) {
	g := pathGraph(t, 2)
	g.SetLabel(0, "seattle")
	split, _ := g.SplitLinks()
	if split.Label(0) != "seattle" {
		t.Fatal("original labels must be preserved")
	}
	if split.Label(2) != "link(seattle-1)" {
		t.Fatalf("link label = %q", split.Label(2))
	}
}

func TestSplitLinksEmptyAndEdgeless(t *testing.T) {
	split, links := New(3).SplitLinks()
	if split.NumNodes() != 3 || split.NumEdges() != 0 || len(links) != 0 {
		t.Fatal("edgeless graph should split to itself")
	}
}
