package graph

import (
	"strings"
	"testing"
)

// FuzzParse checks that the edge-list parser never panics and that
// anything it accepts round-trips through Write and parses back to the
// same shape.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"edge 0 1\n",
		"0 1\n1 2\n",
		"node 0 seattle\nedge 0 1\n",
		"edge 0 1 2.5\n",
		"edge 0 0\n",
		"edge 0 1\nedge 1 0\n",
		"node x y\n",
		"edge a b\n",
		"0 1 2 3 4\n",
		"edge 0 99999999\n",
		"edge -1 2\n",
		"edge 0 1 NaN\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted graphs must satisfy basic invariants.
		if g.NumNodes() <= 0 {
			t.Fatalf("accepted graph with %d nodes", g.NumNodes())
		}
		for _, e := range g.Edges() {
			if e.U == e.V {
				t.Fatal("accepted self loop")
			}
			if e.Weight <= 0 {
				t.Fatalf("accepted non-positive weight %v", e.Weight)
			}
		}
		// Round trip must preserve shape.
		var buf strings.Builder
		if err := g.Write(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, buf.String())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d → %d/%d",
				g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
		}
	})
}
