// Package graph implements the undirected service-network graph G = (N, L)
// of the paper's Section II-A, together with the traversal primitives the
// routing and placement layers need: breadth-first search, Dijkstra,
// connected components, and degree queries.
//
// Nodes are dense integer IDs in [0, NumNodes) and carry an optional label.
// Links do not fail (the paper models link failures as logical nodes), so
// edges are plain unweighted or weighted pairs.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node in a Graph. IDs are dense in [0, NumNodes).
type NodeID = int

// Edge is an undirected link between two nodes with a positive weight.
// Weight 1 corresponds to hop-count routing, the paper's QoS distance.
type Edge struct {
	U, V   NodeID
	Weight float64
}

// Graph is an undirected simple graph. The zero value is an empty graph;
// use New or a Builder to construct one.
type Graph struct {
	labels []string
	adj    [][]neighbor
	edges  []Edge
}

type neighbor struct {
	to     NodeID
	weight float64
}

// Errors returned by graph construction and validation.
var (
	ErrNodeRange     = errors.New("graph: node id out of range")
	ErrSelfLoop      = errors.New("graph: self loops not allowed")
	ErrParallelEdge  = errors.New("graph: parallel edge")
	ErrBadWeight     = errors.New("graph: edge weight must be positive")
	ErrEmptyGraph    = errors.New("graph: graph has no nodes")
	ErrDisconnected  = errors.New("graph: graph is not connected")
	ErrDuplicateName = errors.New("graph: duplicate node label")
)

// New returns a graph with n isolated nodes labeled "0".."n-1".
func New(n int) *Graph {
	g := &Graph{
		labels: make([]string, n),
		adj:    make([][]neighbor, n),
	}
	for i := range g.labels {
		g.labels[i] = fmt.Sprintf("%d", i)
	}
	return g
}

// NumNodes returns |N|.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns |L|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) string {
	g.mustHave(v)
	return g.labels[v]
}

// SetLabel sets the label of node v.
func (g *Graph) SetLabel(v NodeID, label string) {
	g.mustHave(v)
	g.labels[v] = label
}

// AddEdge inserts an undirected edge {u, v} with weight 1.
func (g *Graph) AddEdge(u, v NodeID) error {
	return g.AddWeightedEdge(u, v, 1)
}

// AddWeightedEdge inserts an undirected edge {u, v} with the given weight.
// Self loops, parallel edges, and non-positive weights are rejected.
func (g *Graph) AddWeightedEdge(u, v NodeID, weight float64) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("%w: (%d, %d) with %d nodes", ErrNodeRange, u, v, len(g.adj))
	}
	if u == v {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	if !(weight > 0) || math.IsInf(weight, 1) {
		// The negated comparison also rejects NaN.
		return fmt.Errorf("%w: %g", ErrBadWeight, weight)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("%w: (%d, %d)", ErrParallelEdge, u, v)
	}
	g.adj[u] = append(g.adj[u], neighbor{to: v, weight: weight})
	g.adj[v] = append(g.adj[v], neighbor{to: u, weight: weight})
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: weight})
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	// Scan the smaller adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, nb := range g.adj[u] {
		if nb.to == v {
			return true
		}
	}
	return false
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int {
	g.mustHave(v)
	return len(g.adj[v])
}

// Neighbors returns the neighbors of v in ascending ID order. The returned
// slice is freshly allocated.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	g.mustHave(v)
	out := make([]NodeID, 0, len(g.adj[v]))
	for _, nb := range g.adj[v] {
		out = append(out, nb.to)
	}
	sort.Ints(out)
	return out
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// DanglingNodes returns the nodes with degree exactly one, in ascending
// order. The paper uses these as candidate client locations (Section VI-A).
func (g *Graph) DanglingNodes() []NodeID {
	var out []NodeID
	for v := range g.adj {
		if len(g.adj[v]) == 1 {
			out = append(out, v)
		}
	}
	return out
}

// BFSDistances returns hop-count distances from src to every node. Nodes
// unreachable from src have distance -1.
func (g *Graph) BFSDistances(src NodeID) []int {
	g.mustHave(src)
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, len(g.adj))
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[u] {
			if dist[nb.to] == -1 {
				dist[nb.to] = dist[u] + 1
				queue = append(queue, nb.to)
			}
		}
	}
	return dist
}

// ShortestPathTree holds the result of a single-source shortest path
// computation with deterministic lexicographic tie-breaking: among
// equal-length shortest paths, the one whose predecessor has the smallest
// node ID is chosen. Deterministic routing makes every experiment in this
// repository reproducible.
type ShortestPathTree struct {
	Source NodeID
	Dist   []float64 // Dist[v] = distance from Source, +Inf if unreachable
	Parent []NodeID  // Parent[v] = predecessor on the chosen path, -1 at source/unreachable
}

// Dijkstra computes a deterministic shortest path tree from src using edge
// weights. For the all-ones weighting this matches BFS hop counts.
func (g *Graph) Dijkstra(src NodeID) *ShortestPathTree {
	g.mustHave(src)
	n := len(g.adj)
	const inf = 1e18
	t := &ShortestPathTree{
		Source: src,
		Dist:   make([]float64, n),
		Parent: make([]NodeID, n),
	}
	for i := range t.Dist {
		t.Dist[i] = inf
		t.Parent[i] = -1
	}
	t.Dist[src] = 0

	h := &nodeHeap{}
	h.push(heapItem{dist: 0, node: src})
	done := make([]bool, n)
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, nb := range g.adj[u] {
			v := nb.to
			nd := t.Dist[u] + nb.weight
			switch {
			case nd < t.Dist[v]:
				t.Dist[v] = nd
				t.Parent[v] = u
				h.push(heapItem{dist: nd, node: v})
			case nd == t.Dist[v] && t.Parent[v] > u:
				// Lexicographic tie-break: prefer the smaller predecessor.
				t.Parent[v] = u
			}
		}
	}
	for i := range t.Dist {
		if t.Dist[i] >= inf {
			t.Dist[i] = -1
		}
	}
	return t
}

// PathTo reconstructs the node sequence from the tree source to dst,
// inclusive of both endpoints. It returns nil if dst is unreachable.
func (t *ShortestPathTree) PathTo(dst NodeID) []NodeID {
	if dst < 0 || dst >= len(t.Dist) || t.Dist[dst] < 0 {
		return nil
	}
	var rev []NodeID
	for v := dst; v != -1; v = t.Parent[v] {
		rev = append(rev, v)
		if v == t.Source {
			break
		}
	}
	if rev[len(rev)-1] != t.Source {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Components returns the connected components as slices of node IDs, each
// sorted ascending, ordered by their smallest member.
func (g *Graph) Components() [][]NodeID {
	n := len(g.adj)
	seen := make([]bool, n)
	var comps [][]NodeID
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, nb := range g.adj[u] {
				if !seen[nb.to] {
					seen[nb.to] = true
					stack = append(stack, nb.to)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// Connected reports whether the graph is connected (vacuously false when
// empty).
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return false
	}
	return len(g.Components()) == 1
}

// Validate checks structural invariants: non-empty and connected. Placement
// instances require connectivity so every client can reach every candidate
// host.
func (g *Graph) Validate() error {
	if g.NumNodes() == 0 {
		return ErrEmptyGraph
	}
	if !g.Connected() {
		return fmt.Errorf("%w: %d components", ErrDisconnected, len(g.Components()))
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.NumNodes())
	copy(c.labels, g.labels)
	for _, e := range g.edges {
		// Errors are impossible: the source graph already holds the invariants.
		if err := c.AddWeightedEdge(e.U, e.V, e.Weight); err != nil {
			panic(fmt.Sprintf("graph: clone: %v", err))
		}
	}
	return c
}

func (g *Graph) mustHave(v NodeID) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0, %d)", v, len(g.adj)))
	}
}

// heapItem and nodeHeap implement a minimal binary min-heap keyed on
// (dist, node) so that Dijkstra pops nodes deterministically.
type heapItem struct {
	dist float64
	node NodeID
}

type nodeHeap struct {
	items []heapItem
}

func (h *nodeHeap) len() int { return len(h.items) }

func (h *nodeHeap) less(i, j int) bool {
	if h.items[i].dist != h.items[j].dist {
		return h.items[i].dist < h.items[j].dist
	}
	return h.items[i].node < h.items[j].node
}

func (h *nodeHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *nodeHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
