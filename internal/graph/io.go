package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The edge-list format accepted by Parse is one record per line:
//
//	# comment
//	nodes <count>            (optional; forces the universe size)
//	node <id> <label>        (optional; declares a labeled node)
//	edge <u> <v> [weight]    (undirected edge, default weight 1)
//
// or the bare two/three-column form "<u> <v> [weight]". Node IDs must be
// non-negative integers; the graph size is 1 + the largest ID seen.

// MaxParseNodes caps the node universe Parse will allocate; a sparse file
// mentioning a huge node ID would otherwise force allocation proportional
// to the ID rather than to the input size.
const MaxParseNodes = 1 << 20

// Parse reads a graph from the edge-list format described in the package
// documentation. Node IDs must be below MaxParseNodes.
func Parse(r io.Reader) (*Graph, error) {
	type rawEdge struct {
		u, v   int
		weight float64
	}
	var (
		edges  []rawEdge
		labels = map[int]string{}
		maxID  = -1
	)
	note := func(ids ...int) error {
		for _, id := range ids {
			if id >= MaxParseNodes {
				return fmt.Errorf("graph: node id %d exceeds limit %d", id, MaxParseNodes)
			}
			if id > maxID {
				maxID = id
			}
		}
		return nil
	}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: nodes needs a count", lineNo)
			}
			count, err := strconv.Atoi(fields[1])
			if err != nil || count <= 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			if err := note(count - 1); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		case "node":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: node needs id and label", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[1])
			}
			labels[id] = strings.Join(fields[2:], " ")
			if err := note(id); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		case "edge":
			fields = fields[1:]
			fallthrough
		default:
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("graph: line %d: want \"u v [weight]\"", lineNo)
			}
			u, err := strconv.Atoi(fields[0])
			if err != nil || u < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[0])
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[1])
			}
			w := 1.0
			if len(fields) == 3 {
				w, err = strconv.ParseFloat(fields[2], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
				}
			}
			edges = append(edges, rawEdge{u: u, v: v, weight: w})
			if err := note(u, v); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if maxID < 0 {
		return nil, ErrEmptyGraph
	}

	g := New(maxID + 1)
	for id, label := range labels {
		g.SetLabel(id, label)
	}
	for _, e := range edges {
		if err := g.AddWeightedEdge(e.u, e.v, e.weight); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Write serializes the graph in the format accepted by Parse. Node labels
// that differ from the default decimal ID are emitted as node records.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(bw, "nodes %d\n", g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		if g.labels[v] != strconv.Itoa(v) {
			fmt.Fprintf(bw, "node %d %s\n", v, g.labels[v])
		}
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		if e.Weight == 1 {
			fmt.Fprintf(bw, "edge %d %d\n", e.U, e.V)
		} else {
			fmt.Fprintf(bw, "edge %d %d %g\n", e.U, e.V, e.Weight)
		}
	}
	return bw.Flush()
}

// DOT renders the graph in Graphviz format for debugging and documentation.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Fprintf(&b, "  %d [label=%q];\n", v, g.labels[v])
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  %d -- %d;\n", e.U, e.V)
	}
	b.WriteString("}\n")
	return b.String()
}
