package failsim

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/monitor"
)

func mkPathSet(t testing.TB, n int, paths ...[]int) *monitor.PathSet {
	t.Helper()
	ps := monitor.NewPathSet(n)
	for _, p := range paths {
		if err := ps.Add(bitset.FromIndices(n, p...)); err != nil {
			t.Fatal(err)
		}
	}
	return ps
}

func TestRunValidation(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0})
	if _, err := Run(nil, Config{K: 1, Trials: 1}); err == nil {
		t.Fatal("nil paths should error")
	}
	if _, err := Run(ps, Config{K: 0, Trials: 1}); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := Run(ps, Config{K: 1, Trials: 0}); err == nil {
		t.Fatal("Trials=0 should error")
	}
	if _, err := Run(ps, Config{K: 9, Trials: 1}); err == nil {
		t.Fatal("K > n should error")
	}
	if _, err := Run(monitor.NewPathSet(0), Config{K: 1, Trials: 1}); err == nil {
		t.Fatal("empty universe should error")
	}
}

func TestFullyIdentifyingPathsAlwaysUnique(t *testing.T) {
	// One singleton path per node: every failure is detected and uniquely
	// localized, greedy recovers it, ambiguity is zero.
	ps := mkPathSet(t, 4, []int{0}, []int{1}, []int{2}, []int{3})
	stats, err := Run(ps, Config{K: 2, Trials: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DetectionRate() != 1 {
		t.Fatalf("detection rate = %v, want 1", stats.DetectionRate())
	}
	if stats.UniqueRate() != 1 {
		t.Fatalf("unique rate = %v, want 1", stats.UniqueRate())
	}
	if stats.Unique != stats.UniqueCorrect {
		t.Fatal("unique diagnoses must be correct")
	}
	if stats.GreedyExactRate() != 1 {
		t.Fatalf("greedy exact rate = %v, want 1", stats.GreedyExactRate())
	}
	if stats.MeanAmbiguity() != 0 || stats.MaxAmbiguity != 0 {
		t.Fatal("ambiguity should be zero")
	}
}

func TestUncoveredNodesReduceDetection(t *testing.T) {
	// Only node 0 covered out of 4: single failures of 1..3 go undetected.
	ps := mkPathSet(t, 4, []int{0})
	stats, err := Run(ps, Config{K: 1, Trials: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DetectionRate() >= 0.5 {
		t.Fatalf("detection rate = %v, expected ~0.25", stats.DetectionRate())
	}
	if stats.DetectionRate() == 0 {
		t.Fatal("node 0 failures should still be detected")
	}
}

func TestAmbiguousPathsYieldAmbiguity(t *testing.T) {
	// Single path over two nodes: failures of 0 and 1 collide.
	ps := mkPathSet(t, 2, []int{0, 1})
	stats, err := Run(ps, Config{K: 1, Trials: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if stats.UniqueRate() != 0 {
		t.Fatalf("unique rate = %v, want 0", stats.UniqueRate())
	}
	if stats.MeanAmbiguity() == 0 {
		t.Fatal("expected positive ambiguity")
	}
}

func TestDefiniteFailedPrecisionIsOne(t *testing.T) {
	ps := mkPathSet(t, 5, []int{0, 1}, []int{1, 2}, []int{3}, []int{2, 3, 4})
	stats, err := Run(ps, Config{K: 2, Trials: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DefiniteFailedTotal > 0 && stats.DefiniteFailedCorrect != stats.DefiniteFailedTotal {
		t.Fatalf("definitely-failed precision %d/%d < 1: diagnosis unsound",
			stats.DefiniteFailedCorrect, stats.DefiniteFailedTotal)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	ps := mkPathSet(t, 4, []int{0, 1}, []int{2, 3})
	a, err := Run(ps, Config{K: 2, Trials: 50, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ps, Config{K: 2, Trials: 50, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed should give same stats: %+v vs %+v", a, b)
	}
}

func TestRatiosOnZeroTrialsStats(t *testing.T) {
	var s Stats
	if s.DetectionRate() != 0 || s.UniqueRate() != 0 || s.GreedyExactRate() != 0 || s.MeanAmbiguity() != 0 {
		t.Fatal("zero-value stats should have zero rates")
	}
}
