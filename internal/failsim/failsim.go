package failsim

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/monitor"
	"repro/internal/tomography"
)

// Config parameterizes an experiment run.
type Config struct {
	// K is the maximum number of simultaneous failures injected (and the
	// budget given to the localizer). Must be ≥ 1.
	K int
	// Trials is the number of injected failure scenarios.
	Trials int
	// Seed drives the failure sampling.
	Seed int64
}

// Stats aggregates the outcomes of an experiment.
type Stats struct {
	Trials int
	// Detected counts trials where at least one path failed.
	Detected int
	// Unique counts trials where tomography returned exactly one
	// consistent hypothesis.
	Unique int
	// UniqueCorrect counts trials where that unique hypothesis was the
	// injected truth (a unique diagnosis is correct whenever the truth is
	// within the failure budget, which this harness guarantees).
	UniqueCorrect int
	// GreedyExact counts trials where the greedy minimum-explanation
	// heuristic returned exactly the injected failure set.
	GreedyExact int
	// TotalAmbiguity sums the per-trial ambiguity (|consistent| − 1).
	TotalAmbiguity int
	// MaxAmbiguity is the worst per-trial ambiguity.
	MaxAmbiguity int
	// DefiniteFailedCorrect counts, across trials, nodes reported
	// definitely-failed that were truly failed; DefiniteFailedTotal is the
	// number reported. Precision is their ratio (soundness check: should
	// be 1 by construction).
	DefiniteFailedCorrect, DefiniteFailedTotal int
}

// DetectionRate returns Detected/Trials.
func (s *Stats) DetectionRate() float64 { return ratio(s.Detected, s.Trials) }

// UniqueRate returns Unique/Trials.
func (s *Stats) UniqueRate() float64 { return ratio(s.Unique, s.Trials) }

// GreedyExactRate returns GreedyExact/Trials.
func (s *Stats) GreedyExactRate() float64 { return ratio(s.GreedyExact, s.Trials) }

// MeanAmbiguity returns TotalAmbiguity/Trials.
func (s *Stats) MeanAmbiguity() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.TotalAmbiguity) / float64(s.Trials)
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Run injects Trials random failure sets of size 1..K (uniform size, then
// uniform nodes) into the given measurement paths and scores localization.
func Run(ps *monitor.PathSet, cfg Config) (*Stats, error) {
	if ps == nil {
		return nil, fmt.Errorf("failsim: nil path set")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("failsim: K must be ≥ 1, got %d", cfg.K)
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("failsim: Trials must be ≥ 1, got %d", cfg.Trials)
	}
	n := ps.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("failsim: empty node universe")
	}
	if cfg.K > n {
		return nil, fmt.Errorf("failsim: K = %d exceeds %d nodes", cfg.K, n)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := &Stats{Trials: cfg.Trials}
	for trial := 0; trial < cfg.Trials; trial++ {
		truth := sampleFailureSet(rng, n, cfg.K)
		if err := runTrial(ps, truth, cfg.K, stats); err != nil {
			return nil, fmt.Errorf("failsim: trial %d: %w", trial, err)
		}
	}
	return stats, nil
}

func sampleFailureSet(rng *rand.Rand, n, k int) []int {
	size := 1 + rng.Intn(k)
	perm := rng.Perm(n)
	failed := append([]int(nil), perm[:size]...)
	return failed
}

func runTrial(ps *monitor.PathSet, truth []int, k int, stats *Stats) error {
	truthSet := bitset.FromIndices(ps.NumNodes(), truth...)
	obs, err := tomography.Observe(ps, truthSet)
	if err != nil {
		return err
	}
	if obs.AnyFailure() {
		stats.Detected++
	}
	diag, err := tomography.Localize(obs, k)
	if err != nil {
		return err
	}
	if diag.Unique() {
		stats.Unique++
		if sameSet(diag.Consistent[0], truthSet) {
			stats.UniqueCorrect++
		}
	}
	amb := diag.Ambiguity()
	stats.TotalAmbiguity += amb
	if amb > stats.MaxAmbiguity {
		stats.MaxAmbiguity = amb
	}
	for _, v := range diag.DefinitelyFailed {
		stats.DefiniteFailedTotal++
		if truthSet.Contains(v) {
			stats.DefiniteFailedCorrect++
		}
	}
	expl, err := tomography.GreedyExplanation(obs)
	if err == nil && sameSet(expl, truthSet) {
		stats.GreedyExact++
	}
	return nil
}

func sameSet(nodes []int, want *bitset.Set) bool {
	if len(nodes) != want.Count() {
		return false
	}
	for _, v := range nodes {
		if !want.Contains(v) {
			return false
		}
	}
	return true
}
