// Package failsim runs end-to-end failure localization experiments:
// inject ground-truth failure sets, generate the binary observations the
// service layer would see, run Boolean tomography (Section III-B), and
// score the diagnosis.
//
// It quantifies, in operational terms, what the monitor package's
// abstract measures buy:
//
//   - detection rate — a failure set is detected iff it breaks some
//     monitoring path, i.e. iff it meets the covered set C(P) of
//     Section II-B1;
//   - unique-localization rate — the injected set is returned as the
//     only candidate explanation, which Section II-B2 identifiability
//     guarantees for 1-identifiable nodes;
//   - residual ambiguity — the size of the candidate collection when
//     localization is not unique, the per-trial version of the
//     "degree of uncertainty" distribution of Section VI-B (Fig. 8),
//     which Section II-B3 distinguishability drives down.
//
// Run scores one placement's path set over seeded random k-failure
// trials (Stats). Compare scores several placements on identical trial
// sequences (same seed, same injected sets) so the comparison isolates
// the placement, mirroring how Section VI's evaluation holds the
// workload fixed across algorithms. The ordering the paper predicts —
// the greedy distinguishability placement beating the QoS-only baseline
// — is pinned by this package's tests.
package failsim
