package failsim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/monitor"
)

// Comparison reports localization quality for several placements under an
// identical injected-failure workload — the operational rendering of the
// paper's Figs. 5-8: the same failures hit every placement, and the
// placements differ only in what their connection states reveal.
type Comparison struct {
	// Names lists the placements in input order.
	Names []string
	// Stats[i] corresponds to Names[i].
	Stats []*Stats
}

// Compare runs the same failure workload (cfg.Seed drives identical
// failure draws for every placement) against each named path set.
func Compare(names []string, pathSets []*monitor.PathSet, cfg Config) (*Comparison, error) {
	if len(names) != len(pathSets) {
		return nil, fmt.Errorf("failsim: %d names for %d path sets", len(names), len(pathSets))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("failsim: nothing to compare")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("failsim: empty placement name")
		}
		if seen[n] {
			return nil, fmt.Errorf("failsim: duplicate placement name %q", n)
		}
		seen[n] = true
	}
	c := &Comparison{Names: append([]string(nil), names...)}
	for i, ps := range pathSets {
		stats, err := Run(ps, cfg)
		if err != nil {
			return nil, fmt.Errorf("failsim: placement %q: %w", names[i], err)
		}
		c.Stats = append(c.Stats, stats)
	}
	return c, nil
}

// Best returns the name of the placement with the highest unique-
// localization rate, breaking ties by lower mean ambiguity and then by
// input order.
func (c *Comparison) Best() string {
	best := 0
	for i := 1; i < len(c.Stats); i++ {
		a, b := c.Stats[i], c.Stats[best]
		switch {
		case a.UniqueRate() > b.UniqueRate():
			best = i
		case a.UniqueRate() == b.UniqueRate() && a.MeanAmbiguity() < b.MeanAmbiguity():
			best = i
		}
	}
	return c.Names[best]
}

// Render produces an aligned text table of the comparison.
func (c *Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %9s %9s %9s %10s %8s\n",
		"placement", "detect", "unique", "greedy=F", "mean-amb", "max-amb")
	for i, name := range c.Names {
		s := c.Stats[i]
		fmt.Fprintf(&b, "%-18s %8.1f%% %8.1f%% %8.1f%% %10.2f %8d\n",
			name,
			100*s.DetectionRate(), 100*s.UniqueRate(), 100*s.GreedyExactRate(),
			s.MeanAmbiguity(), s.MaxAmbiguity)
	}
	return b.String()
}

// SortedByUniqueRate returns the placement names best-first (the Best
// ordering applied to all entries).
func (c *Comparison) SortedByUniqueRate() []string {
	idx := make([]int, len(c.Names))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := c.Stats[idx[a]], c.Stats[idx[b]]
		if sa.UniqueRate() != sb.UniqueRate() {
			return sa.UniqueRate() > sb.UniqueRate()
		}
		return sa.MeanAmbiguity() < sb.MeanAmbiguity()
	})
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = c.Names[j]
	}
	return out
}
