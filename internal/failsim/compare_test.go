package failsim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestCompareValidation(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0})
	cfg := Config{K: 1, Trials: 10, Seed: 1}
	if _, err := Compare([]string{"a"}, nil, cfg); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Compare(nil, nil, cfg); err == nil {
		t.Fatal("empty comparison should error")
	}
	if _, err := Compare([]string{""}, []*monitor.PathSet{ps}, cfg); err == nil {
		t.Fatal("empty name should error")
	}
	if _, err := Compare([]string{"a", "a"}, []*monitor.PathSet{ps, ps}, cfg); err == nil {
		t.Fatal("duplicate name should error")
	}
	if _, err := Compare([]string{"a"}, []*monitor.PathSet{ps}, Config{K: 0, Trials: 1}); err == nil {
		t.Fatal("bad config should propagate")
	}
}

func TestCompareBetterPathsWin(t *testing.T) {
	// Placement A: one singleton path per node (perfect localization).
	// Placement B: one path covering everything (pure detection).
	n := 4
	perfect := mkPathSet(t, n, []int{0}, []int{1}, []int{2}, []int{3})
	blurry := mkPathSet(t, n, []int{0, 1, 2, 3})

	c, err := Compare([]string{"perfect", "blurry"},
		[]*monitor.PathSet{perfect, blurry},
		Config{K: 1, Trials: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Best(); got != "perfect" {
		t.Fatalf("Best = %q", got)
	}
	if got := c.SortedByUniqueRate(); !reflect.DeepEqual(got, []string{"perfect", "blurry"}) {
		t.Fatalf("Sorted = %v", got)
	}
	text := c.Render()
	for _, want := range []string{"perfect", "blurry", "unique", "mean-amb"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	// Both detect every failure (full coverage), but only perfect
	// localizes uniquely.
	if c.Stats[0].UniqueRate() != 1 {
		t.Fatalf("perfect unique rate = %v", c.Stats[0].UniqueRate())
	}
	if c.Stats[1].UniqueRate() != 0 {
		t.Fatalf("blurry unique rate = %v", c.Stats[1].UniqueRate())
	}
}

func TestCompareTieBreaksByAmbiguity(t *testing.T) {
	// Neither placement localizes uniquely, but A has lower ambiguity
	// (two 2-node classes) than B (one 4-node class).
	a := mkPathSet(t, 4, []int{0, 1}, []int{2, 3})
	b := mkPathSet(t, 4, []int{0, 1, 2, 3})
	c, err := Compare([]string{"halves", "all"},
		[]*monitor.PathSet{a, b},
		Config{K: 1, Trials: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Best(); got != "halves" {
		t.Fatalf("Best = %q (stats %+v / %+v)", got, c.Stats[0], c.Stats[1])
	}
}

// End-to-end: the paper's operational claim — GD placement localizes
// better than QoS placement under the same failures.
func TestCompareGDBeatsQoSOperationally(t *testing.T) {
	topo := topology.MustBuild(topology.Tiscali)
	r, err := routing.New(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]placement.Service, 3)
	for s := range services {
		services[s] = placement.Service{
			Name:    "svc",
			Clients: topo.CandidateClients[3*s : 3*s+3],
		}
	}
	inst, err := placement.NewInstance(r, services, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := placement.Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	qos, err := placement.QoS(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	gdPaths, err := inst.PathSet(gd.Placement)
	if err != nil {
		t.Fatal(err)
	}
	qosPaths, err := inst.PathSet(qos.Placement)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare([]string{"GD", "QoS"},
		[]*monitor.PathSet{gdPaths, qosPaths},
		Config{K: 1, Trials: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	gdStats, qosStats := c.Stats[0], c.Stats[1]
	if gdStats.UniqueRate() <= qosStats.UniqueRate() {
		t.Fatalf("GD unique rate %v should beat QoS %v",
			gdStats.UniqueRate(), qosStats.UniqueRate())
	}
	if gdStats.DetectionRate() < qosStats.DetectionRate() {
		t.Fatalf("GD detection %v should be at least QoS %v",
			gdStats.DetectionRate(), qosStats.DetectionRate())
	}
}
