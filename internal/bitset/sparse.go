package bitset

import (
	"fmt"
	"sort"
	"strings"
)

// Sparse is an immutable set over the universe [0, n) stored as sorted
// member indices rather than a bit array. It is the memory-proportional
// representation of a measurement path: a path through a 100k-node
// network touches tens of nodes, and storing those as a dense Set costs
// 12.5 KB per path where Sparse costs 4 bytes per hop. The placement
// engines carry every candidate (service, host) pair's paths in memory
// at once, so at 10k–100k nodes the dense form is the difference
// between megabytes and gigabytes.
//
// Sparse is deliberately read-only after construction: paths never
// change once routed, and immutability lets every consumer share one
// instance without cloning. Mutating set algebra stays on the dense Set;
// UnionInto bridges into it.
type Sparse struct {
	n   int
	idx []int32
}

// SparseFromNodes returns a sparse set over [0, n) holding the given
// indices. The input is copied, sorted, and deduplicated; indices
// outside [0, n) panic, mirroring Set.Add — paths are built from
// validated node IDs, so an out-of-range index is a programming error.
func SparseFromNodes(n int, nodes []int) *Sparse {
	if n < 0 {
		n = 0
	}
	s := &Sparse{n: n, idx: make([]int32, 0, len(nodes))}
	for _, v := range nodes {
		if v < 0 || v >= n {
			panic(fmt.Sprintf("bitset: index %d out of range [0, %d)", v, n))
		}
		s.idx = append(s.idx, int32(v))
	}
	sort.Slice(s.idx, func(i, j int) bool { return s.idx[i] < s.idx[j] })
	// Drop duplicates in place; the slice is already sorted.
	w := 0
	for i, v := range s.idx {
		if i > 0 && v == s.idx[w-1] {
			continue
		}
		s.idx[w] = v
		w++
	}
	s.idx = s.idx[:w]
	return s
}

// SparseFromSet converts a dense set to its sparse form.
func SparseFromSet(o *Set) *Sparse {
	s := &Sparse{n: o.Cap(), idx: make([]int32, 0, o.Count())}
	o.ForEach(func(i int) bool {
		s.idx = append(s.idx, int32(i))
		return true
	})
	return s
}

// Cap returns the universe size n.
func (s *Sparse) Cap() int { return s.n }

// Count returns the number of elements.
func (s *Sparse) Count() int { return len(s.idx) }

// Contains reports whether i is in the set. Out-of-range indices are
// reported as absent.
func (s *Sparse) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	v := int32(i)
	lo, hi := 0, len(s.idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.idx[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.idx) && s.idx[lo] == v
}

// ForEach calls fn for each element in ascending order. It stops early
// if fn returns false.
func (s *Sparse) ForEach(fn func(i int) bool) {
	for _, v := range s.idx {
		if !fn(int(v)) {
			return
		}
	}
}

// Indices returns the elements in ascending order (a fresh slice).
func (s *Sparse) Indices() []int {
	out := make([]int, len(s.idx))
	for i, v := range s.idx {
		out[i] = int(v)
	}
	return out
}

// Dense materializes the set as a dense Set over the same universe.
func (s *Sparse) Dense() *Set {
	d := New(s.n)
	for _, v := range s.idx {
		d.Add(int(v))
	}
	return d
}

// UnionInto adds every element of s to the dense set dst. The universes
// must match; mixing them panics, as with Set.UnionWith.
func (s *Sparse) UnionInto(dst *Set) {
	if s.n != dst.Cap() {
		panic(fmt.Sprintf("bitset: universe mismatch %d != %d", s.n, dst.Cap()))
	}
	for _, v := range s.idx {
		dst.words[v/wordBits] |= 1 << (uint(v) % wordBits)
	}
}

// Equal reports whether s and o contain the same elements. Sets over
// different universes are never equal.
func (s *Sparse) Equal(o *Sparse) bool {
	if s.n != o.n || len(s.idx) != len(o.idx) {
		return false
	}
	for i, v := range s.idx {
		if v != o.idx[i] {
			return false
		}
	}
	return true
}

// Key returns a string usable as a map key identifying the set
// contents. Two sparse sets over the same universe have equal keys iff
// they are Equal. The encoding (4 little-endian bytes per member) is
// proportional to the member count, unlike the dense Set.Key, and the
// two keyspaces are not interchangeable.
func (s *Sparse) Key() string {
	var b strings.Builder
	b.Grow(len(s.idx) * 4)
	for _, v := range s.idx {
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}

// Hash returns a 64-bit FNV-1a hash of the member indices. Equal sets
// hash equally; use Equal to confirm.
func (s *Sparse) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range s.idx {
		h ^= uint64(uint32(v))
		h *= prime
	}
	return h
}

// String renders the set as "{a, b, c}".
func (s *Sparse) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range s.idx {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte('}')
	return b.String()
}
