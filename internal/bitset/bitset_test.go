package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if got := s.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	if got := s.Cap(); got != 100 {
		t.Fatalf("Cap = %d, want 100", got)
	}
}

func TestNewNegativeCapacity(t *testing.T) {
	s := New(-5)
	if s.Cap() != 0 {
		t.Fatalf("Cap = %d, want 0", s.Cap())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("!Contains(%d) after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(1000) {
		t.Fatal("out-of-range Contains should be false")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Add(4)
}

func TestMixedUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).UnionWith(New(8))
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(10, 1, 3, 5, 3, -1, 99)
	want := []int{1, 3, 5}
	if got := s.Indices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
}

func TestSetOps(t *testing.T) {
	a := FromIndices(200, 1, 2, 3, 100, 150)
	b := FromIndices(200, 2, 3, 4, 150, 199)

	if got := a.Union(b).Indices(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 100, 150, 199}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b).Indices(); !reflect.DeepEqual(got, []int{2, 3, 150}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Difference(b).Indices(); !reflect.DeepEqual(got, []int{1, 100}) {
		t.Fatalf("Difference = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects should be true")
	}
	if got := a.IntersectionCount(b); got != 3 {
		t.Fatalf("IntersectionCount = %d, want 3", got)
	}
	if got := a.DifferenceCount(b); got != 2 {
		t.Fatalf("DifferenceCount = %d, want 2", got)
	}
}

func TestIntersectsDisjoint(t *testing.T) {
	a := FromIndices(100, 0, 50)
	b := FromIndices(100, 1, 51)
	if a.Intersects(b) {
		t.Fatal("disjoint sets should not intersect")
	}
}

func TestSubset(t *testing.T) {
	a := FromIndices(100, 1, 2)
	b := FromIndices(100, 1, 2, 3)
	if !a.IsSubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.IsSubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.IsSubsetOf(a) {
		t.Fatal("a should be subset of itself")
	}
	empty := New(100)
	if !empty.IsSubsetOf(a) {
		t.Fatal("empty should be subset of anything")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(64, 5)
	b := a.Clone()
	b.Add(6)
	if a.Contains(6) {
		t.Fatal("Clone must not alias")
	}
	if !b.Contains(5) {
		t.Fatal("Clone must copy contents")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromIndices(64, 1, 2, 3)
	b := FromIndices(64, 9)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom should make sets equal")
	}
	b.Add(10)
	if a.Contains(10) {
		t.Fatal("CopyFrom must not alias")
	}
}

func TestEqualDifferentUniverse(t *testing.T) {
	if New(10).Equal(New(20)) {
		t.Fatal("different-universe sets must not be Equal")
	}
}

func TestClear(t *testing.T) {
	s := FromIndices(64, 1, 2, 3)
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear should empty the set")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(64, 1, 2, 3, 4)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Fatalf("seen = %v, want [1 2]", seen)
	}
}

func TestKeyAndHashAgreeWithEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(150)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("Key/Equal disagree: a=%v b=%v", a, b)
		}
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatal("equal sets must hash equally")
		}
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(10, 1, 3).String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: union is commutative, associative, and monotone in Count.
func TestQuickUnionProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u1, u2 := a.Union(b), b.Union(a)
		if !u1.Equal(u2) {
			return false
		}
		if u1.Count() < a.Count() || u1.Count() < b.Count() {
			return false
		}
		// |A ∪ B| = |A| + |B| - |A ∩ B|
		return u1.Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: difference and intersection partition the set.
func TestQuickPartitionProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		inter := a.Intersect(b)
		diff := a.Difference(b)
		if inter.Intersects(diff) {
			return false
		}
		return inter.Union(diff).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan via subset checks — (A ⊆ B) iff A \ B = ∅.
func TestQuickSubsetDifference(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return a.IsSubsetOf(b) == a.Difference(b).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a, c := New(4096), New(4096)
	for i := 0; i < 4096; i++ {
		if rng.Intn(2) == 0 {
			a.Add(i)
		}
		if rng.Intn(2) == 0 {
			c.Add(i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.UnionWith(c)
	}
}

func BenchmarkKey(b *testing.B) {
	s := FromIndices(1024, 1, 64, 512, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}
