// Package bitset implements a dense, fixed-universe bit set.
//
// Bit sets are the workhorse data structure of this repository: a
// measurement path is a bit set over nodes, a node's observation signature
// is a bit set over paths, and a failure set's path-state signature is the
// union (OR) of its members' signatures. Counting distinguishable pairs of
// failure sets and identifiable nodes reduces to grouping equal signatures,
// so Set must support fast equality, hashing, and bulk boolean operations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set over the universe [0, n).
//
// The zero value is an empty set of capacity zero. Use New to create a set
// with a non-zero universe. Methods that combine two sets require equal
// capacity and panic otherwise: mixing universes is a programming error,
// not a runtime condition.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{
		n:     n,
		words: make([]uint64, (n+wordBits-1)/wordBits),
	}
}

// FromIndices returns a set over [0, n) containing exactly the given
// indices. Indices outside [0, n) are ignored.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		if i >= 0 && i < n {
			s.Add(i)
		}
	}
	return s
}

// Cap returns the universe size n.
func (s *Set) Cap() int { return s.n }

// Add inserts i into the set. It panics if i is outside [0, n).
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set. It panics if i is outside [0, n).
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set. Out-of-range indices are
// reported as absent.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites the receiver with the contents of o. The two sets
// must share a universe size.
func (s *Set) CopyFrom(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

// Equal reports whether s and o contain the same elements. Sets over
// different universes are never equal.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// UnionWith adds every element of o to s.
func (s *Set) UnionWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in o.
func (s *Set) IntersectWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes every element of o from s.
func (s *Set) DifferenceWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Union returns a new set containing the elements of s and o.
func (s *Set) Union(o *Set) *Set {
	r := s.Clone()
	r.UnionWith(o)
	return r
}

// Intersect returns a new set containing the elements common to s and o.
func (s *Set) Intersect(o *Set) *Set {
	r := s.Clone()
	r.IntersectWith(o)
	return r
}

// Difference returns a new set containing the elements of s not in o.
func (s *Set) Difference(o *Set) *Set {
	r := s.Clone()
	r.DifferenceWith(o)
	return r
}

// Intersects reports whether s and o share at least one element.
func (s *Set) Intersects(o *Set) bool {
	s.mustMatch(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ o| without allocating.
func (s *Set) IntersectionCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// DifferenceCount returns |s \ o| without allocating.
func (s *Set) DifferenceCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] &^ w)
	}
	return c
}

// IsSubsetOf reports whether every element of s is in o.
func (s *Set) IsSubsetOf(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order. It stops early if
// fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the elements of the set in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Key returns a string usable as a map key identifying the set contents.
// Two sets over the same universe have equal keys iff they are Equal.
func (s *Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(w >> (8 * i)))
		}
	}
	return b.String()
}

// Hash returns a 64-bit FNV-1a style hash of the set contents. Sets with
// equal contents hash equally; use Equal to confirm.
func (s *Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		h ^= w
		h *= prime
	}
	return h
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0, %d)", i, s.n))
	}
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d != %d", s.n, o.n))
	}
}
