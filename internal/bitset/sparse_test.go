package bitset

import (
	"math/rand"
	"testing"
)

func TestSparseBasics(t *testing.T) {
	s := SparseFromNodes(10, []int{7, 3, 3, 5})
	if s.Cap() != 10 {
		t.Fatalf("Cap = %d, want 10", s.Cap())
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d (dup not removed?), want 3", s.Count())
	}
	want := []int{3, 5, 7}
	got := s.Indices()
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
	for i := 0; i < 10; i++ {
		inWant := i == 3 || i == 5 || i == 7
		if s.Contains(i) != inWant {
			t.Fatalf("Contains(%d) = %v, want %v", i, s.Contains(i), inWant)
		}
	}
	if s.Contains(-1) || s.Contains(10) {
		t.Fatal("out-of-range Contains should be false")
	}
	if s.String() != "{3, 5, 7}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSparseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	SparseFromNodes(5, []int{5})
}

func TestSparseDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		d := New(n)
		for i := 0; i < rng.Intn(n+1); i++ {
			d.Add(rng.Intn(n))
		}
		s := SparseFromSet(d)
		if !s.Dense().Equal(d) {
			t.Fatalf("n=%d: Dense(SparseFromSet(d)) != d", n)
		}
		if s.Count() != d.Count() {
			t.Fatalf("n=%d: Count %d != %d", n, s.Count(), d.Count())
		}
		// Contains agrees everywhere.
		for v := -1; v <= n; v++ {
			if s.Contains(v) != d.Contains(v) {
				t.Fatalf("n=%d v=%d: Contains mismatch", n, v)
			}
		}
		// UnionInto seeds a fresh dense set identically.
		u := New(n)
		s.UnionInto(u)
		if !u.Equal(d) {
			t.Fatalf("n=%d: UnionInto mismatch", n)
		}
		// Hash/Key/Equal consistency against an independent rebuild.
		s2 := SparseFromNodes(n, d.Indices())
		if !s.Equal(s2) || s.Key() != s2.Key() || s.Hash() != s2.Hash() {
			t.Fatalf("n=%d: Equal/Key/Hash not stable across construction paths", n)
		}
	}
}

func TestSparseKeyDistinguishes(t *testing.T) {
	a := SparseFromNodes(600, []int{1, 256})
	b := SparseFromNodes(600, []int{257})
	if a.Key() == b.Key() {
		t.Fatal("distinct sets share a Key")
	}
	if a.Equal(b) {
		t.Fatal("distinct sets reported Equal")
	}
}

func TestSparseUnionIntoUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected universe-mismatch panic")
		}
	}()
	SparseFromNodes(4, []int{1}).UnionInto(New(5))
}
