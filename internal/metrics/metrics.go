// Package metrics is a minimal, dependency-free metrics registry for the
// serving layer: counters, gauges, and histograms that render in the
// Prometheus text exposition format (version 0.0.4). It exists so that
// placemond can expose a /metrics endpoint without pulling a client
// library into a stdlib-only reproduction.
//
// All types are safe for concurrent use. Metric identity is the metric
// name plus the (sorted) label pairs supplied at registration; registering
// the same identity twice returns the same instrument, so packages can
// look metrics up idempotently instead of threading instrument pointers
// around.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of named instruments and renders them as
// Prometheus text. The zero value is not usable; create with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*family // by metric name
}

// family groups every labeled child of one metric name (one HELP/TYPE
// header, many series).
type family struct {
	name     string
	help     string
	kind     string // "counter", "gauge", "histogram"
	children map[string]instrument // by rendered label string
}

type instrument interface {
	// write renders the series for this child; labels is the rendered
	// `{k="v",...}` string (empty when unlabeled).
	write(w io.Writer, name, labels string)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*family)}
}

// DefaultBuckets are the histogram buckets used when none are given:
// latency-shaped, from 100µs to ~100s in roughly ×2.5 steps (seconds).
var DefaultBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(c.Value()))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(g.Value()))
}

// Histogram accumulates observations into cumulative buckets plus a sum
// and a count, the Prometheus histogram model.
type Histogram struct {
	mu         sync.Mutex
	upperBound []float64 // sorted, exclusive of +Inf
	counts     []uint64  // per finite bucket (non-cumulative)
	count      uint64
	sum        float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	// First bucket whose upper bound admits v.
	i := sort.SearchFloat64s(h.upperBound, v)
	if i < len(h.counts) {
		h.counts[i]++
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	h.mu.Lock()
	bounds := h.upperBound
	counts := append([]uint64(nil), h.counts...)
	count, sum := h.count, h.sum
	h.mu.Unlock()

	cum := uint64(0)
	for i, ub := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatValue(ub)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

// bucketLabels splices le="bound" into an existing rendered label string.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", le)
}

// Counter returns (registering on first use) the counter with the given
// name and label pairs. labels alternate key, value; it panics on an odd
// count, an invalid name, or a name already registered as another kind —
// all programmer errors.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	inst := r.lookup(name, help, "counter", labels, func() instrument { return &Counter{} })
	return inst.(*Counter)
}

// Gauge returns (registering on first use) the gauge with the given name
// and label pairs. Panics as Counter does.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	inst := r.lookup(name, help, "gauge", labels, func() instrument { return &Gauge{} })
	return inst.(*Gauge)
}

// Histogram returns (registering on first use) the histogram with the
// given name, buckets, and label pairs. A nil or empty bucket slice means
// DefaultBuckets. Buckets must be finite (no NaN or ±Inf — the +Inf
// overflow bucket is implicit) and strictly increasing; a bad slice
// panics at registration with the offending bucket named, instead of
// silently misbinning every later observation. Panics as Counter does,
// and additionally if the same series is re-requested with different
// buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultBuckets
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: %s: bucket %d is %v; buckets must be finite (+Inf is implicit)", name, i, b))
		}
		if i > 0 && b <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s: buckets not strictly increasing (bucket %d: %v ≤ %v)", name, i, b, buckets[i-1]))
		}
	}
	inst := r.lookup(name, help, "histogram", labels, func() instrument {
		return &Histogram{
			upperBound: append([]float64(nil), buckets...),
			counts:     make([]uint64, len(buckets)),
		}
	})
	h := inst.(*Histogram)
	if len(h.upperBound) != len(buckets) {
		panic(fmt.Sprintf("metrics: %s: conflicting bucket layouts", name))
	}
	for i := range buckets {
		if h.upperBound[i] != buckets[i] {
			panic(fmt.Sprintf("metrics: %s: conflicting bucket layouts", name))
		}
	}
	return h
}

func (r *Registry) lookup(name, help, kind string, labels []string, make func() instrument) instrument {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	key := renderLabels(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.metrics[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, children: map[string]instrument{}}
		r.metrics[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("metrics: %s already registered as a %s", name, fam.kind))
	}
	inst, ok := fam.children[key]
	if !ok {
		inst = make()
		fam.children[key] = inst
	}
	return inst
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, families sorted by name and series sorted by label
// string, so output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.metrics[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range fams {
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.kind)
		keys := make([]string, 0, len(fam.children))
		for k := range fam.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fam.children[k].write(&b, fam.name, k)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderLabels turns alternating key/value pairs into a canonical
// `{k="v",...}` string (keys sorted), or "" when there are none.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic(fmt.Sprintf("metrics: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	return validName(s) && !strings.Contains(s, ":")
}
