package metrics

import "sync"

// OtherLabel is the bucket value a Labeler assigns once its cardinality
// cap is reached.
const OtherLabel = "other"

// Labeler caps the cardinality of one label dimension: the first cap
// distinct values map to themselves, every later value maps to
// OtherLabel. The serving layer uses it for tenant-labeled series, so a
// daemon hosting an unbounded stream of short-lived scenarios cannot grow
// an unbounded /metrics page.
//
// The assignment is sticky for the life of the Labeler: a value that ever
// mapped to OtherLabel keeps mapping there even after labeled values are
// deleted, because the registry retains the already-created series either
// way and flapping a tenant between its own series and the shared bucket
// would split its counts.
type Labeler struct {
	mu   sync.Mutex
	cap  int
	seen map[string]struct{}
}

// NewLabeler creates a labeler admitting cap distinct values; cap ≤ 0
// means unlimited (Value is then the identity).
func NewLabeler(cap int) *Labeler {
	return &Labeler{cap: cap, seen: make(map[string]struct{})}
}

// Value returns the label value to use for v: v itself while the cap
// admits it, OtherLabel afterwards.
func (l *Labeler) Value(v string) string {
	if l == nil || l.cap <= 0 {
		return v
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.seen[v]; ok {
		return v
	}
	if len(l.seen) < l.cap {
		l.seen[v] = struct{}{}
		return v
	}
	return OtherLabel
}
