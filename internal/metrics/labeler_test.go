package metrics

import (
	"fmt"
	"sync"
	"testing"
)

func TestLabelerCapsCardinality(t *testing.T) {
	l := NewLabeler(2)
	if got := l.Value("a"); got != "a" {
		t.Fatalf("first value = %q, want a", got)
	}
	if got := l.Value("b"); got != "b" {
		t.Fatalf("second value = %q, want b", got)
	}
	if got := l.Value("c"); got != OtherLabel {
		t.Fatalf("over-cap value = %q, want %q", got, OtherLabel)
	}
	// Admitted values stay admitted; rejected ones stay rejected.
	if got := l.Value("a"); got != "a" {
		t.Fatalf("repeat admitted value = %q, want a", got)
	}
	if got := l.Value("c"); got != OtherLabel {
		t.Fatalf("repeat rejected value = %q, want %q", got, OtherLabel)
	}
}

func TestLabelerUnlimited(t *testing.T) {
	for _, l := range []*Labeler{nil, NewLabeler(0), NewLabeler(-1)} {
		for i := 0; i < 100; i++ {
			v := fmt.Sprintf("v%d", i)
			if got := l.Value(v); got != v {
				t.Fatalf("unlimited labeler rewrote %q to %q", v, got)
			}
		}
	}
}

func TestLabelerConcurrent(t *testing.T) {
	const cap = 8
	l := NewLabeler(cap)
	var wg sync.WaitGroup
	results := make([]string, 64)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = l.Value(fmt.Sprintf("t%d", i))
		}(i)
	}
	wg.Wait()
	own := 0
	for i, got := range results {
		switch got {
		case fmt.Sprintf("t%d", i):
			own++
		case OtherLabel:
		default:
			t.Fatalf("value %d mapped to foreign label %q", i, got)
		}
	}
	if own != cap {
		t.Fatalf("%d values got their own label, want exactly %d", own, cap)
	}
}
