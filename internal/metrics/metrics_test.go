package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "hits", "route", "/healthz")
	b := r.Counter("hits_total", "hits", "route", "/healthz")
	if a != b {
		t.Fatalf("same name+labels returned distinct counters")
	}
	other := r.Counter("hits_total", "hits", "route", "/metrics")
	if a == other {
		t.Fatalf("distinct labels returned the same counter")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering x_total as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Fatalf("sum = %v, want 55.65", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary value 0.1
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBadBucketsPanic(t *testing.T) {
	cases := map[string][]float64{
		"not increasing":  {1, 1, 2},
		"decreasing":      {1, 0.5},
		"nan bucket":      {0.1, math.NaN(), 1},
		"plus inf bucket": {0.1, 1, math.Inf(1)},
		"minus inf first": {math.Inf(-1), 0},
	}
	for name, buckets := range cases {
		func() {
			r := NewRegistry()
			defer func() {
				p := recover()
				if p == nil {
					t.Errorf("%s: buckets %v did not panic", name, buckets)
					return
				}
				if msg, ok := p.(string); !ok || !strings.Contains(msg, "bad_seconds") {
					t.Errorf("%s: panic message %v does not name the metric", name, p)
				}
			}()
			r.Histogram("bad_seconds", "", buckets)
		}()
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("over_seconds", "", []float64{0.5, 1})
	// Three observations past the last finite bucket land only in the
	// implicit +Inf bucket; they must still be counted and summed.
	for _, v := range []float64{2, 100, 1e9} {
		h.Observe(v)
	}
	h.Observe(0.25)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`over_seconds_bucket{le="0.5"} 1`,
		`over_seconds_bucket{le="1"} 1`, // overflow stays out of finite buckets
		`over_seconds_bucket{le="+Inf"} 4`,
		"over_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteTextDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz", "last").Set(1)
	r.Counter("aa_total", "first").Inc()
	r.Counter("mm_total", "mid", "b", "2", "a", "1").Inc()

	var first, second strings.Builder
	if err := r.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("non-deterministic exposition")
	}
	out := first.String()
	if strings.Index(out, "aa_total") > strings.Index(out, "mm_total") ||
		strings.Index(out, "mm_total") > strings.Index(out, "zz") {
		t.Fatalf("families not sorted:\n%s", out)
	}
	// Label keys are canonicalized (sorted) regardless of call order.
	if !strings.Contains(out, `mm_total{a="1",b="2"} 1`) {
		t.Fatalf("labels not canonicalized:\n%s", out)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("ops_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h_seconds", "", nil).Observe(float64(i) / 1000)
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WriteText(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total", "").Value(); got != 8000 {
		t.Fatalf("ops_total = %v, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "", nil).Count(); got != 8000 {
		t.Fatalf("h count = %d, want 8000", got)
	}
}
