package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// BuildWeighted generates the calibrated topology of a spec and assigns
// each link a latency weight drawn uniformly from [minW, maxW) with the
// given seed. Hop-count evaluation (the paper's setting) uses Build;
// weighted variants model heterogeneous link latencies, which flow
// through routing, QoS candidate sets, and placement unchanged — the
// algorithms only see distances.
func BuildWeighted(spec Spec, minW, maxW float64, seed int64) (*Topology, error) {
	if !(minW > 0) || !(maxW >= minW) {
		return nil, fmt.Errorf("topology: bad weight range [%g, %g)", minW, maxW)
	}
	base, err := Build(spec)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(base.Graph.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		g.SetLabel(v, base.Graph.Label(v))
	}
	for _, e := range base.Graph.Edges() {
		w := minW
		if maxW > minW {
			w = minW + rng.Float64()*(maxW-minW)
		}
		if err := g.AddWeightedEdge(e.U, e.V, w); err != nil {
			return nil, err
		}
	}
	topo := &Topology{
		Spec:             spec,
		Graph:            g,
		CandidateClients: append([]graph.NodeID(nil), base.CandidateClients...),
	}
	if err := topo.Verify(); err != nil {
		return nil, err
	}
	return topo, nil
}
