// Package topology provides the evaluation networks of the paper's
// Section VI-A. The paper uses three Rocketfuel ISP POP-level maps
// (Abovenet, Tiscali, AT&T). The measured maps are not redistributable, so
// this package generates deterministic synthetic ISPs calibrated to the
// exact characteristics the paper reports in Table I — node count, link
// count, and dangling-node (degree-1) count — plus connectivity. A loader
// for externally supplied maps is available via graph.Parse.
package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Spec describes the Table I characteristics of a topology.
type Spec struct {
	Name     string
	Nodes    int // |N|
	Links    int // |L|
	Dangling int // number of degree-1 nodes
	Seed     int64
}

// The three evaluation topologies of Table I. Seeds are arbitrary but
// fixed so every experiment is reproducible.
var (
	Abovenet = Spec{Name: "Abovenet", Nodes: 22, Links: 80, Dangling: 2, Seed: 1001}
	Tiscali  = Spec{Name: "Tiscali", Nodes: 51, Links: 129, Dangling: 13, Seed: 1002}
	ATT      = Spec{Name: "AT&T", Nodes: 108, Links: 141, Dangling: 78, Seed: 1003}
)

// Specs returns the three paper topologies in Table I order.
func Specs() []Spec { return []Spec{Abovenet, Tiscali, ATT} }

// ByName returns the spec with the given name (case-sensitive).
func ByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("topology: unknown topology %q", name)
}

// Topology couples a generated graph with its spec and the candidate client
// set used in the evaluation.
type Topology struct {
	Spec  Spec
	Graph *graph.Graph

	// CandidateClients are the nodes eligible to host service clients. Per
	// Section VI-A these are the dangling nodes; for Abovenet six extra
	// nodes are added because only two dangle.
	CandidateClients []graph.NodeID
}

// Build generates the topology for a spec. The construction is:
//
//  1. a random spanning tree over the core (non-dangling) nodes, grown with
//     preferential attachment so that hub-and-spoke POP structure emerges;
//  2. extra core edges, first eliminating degree-1 core nodes, then placed
//     preferentially toward high-degree nodes;
//  3. one access link per dangling node to a random core node.
//
// The result is connected and matches the spec's node, link, and dangling
// counts exactly; Build returns an error if the spec is infeasible.
func Build(spec Spec) (*Topology, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	core := spec.Nodes - spec.Dangling
	g := graph.New(spec.Nodes)
	for v := 0; v < spec.Nodes; v++ {
		if v < core {
			g.SetLabel(v, fmt.Sprintf("%s-pop%d", spec.Name, v))
		} else {
			g.SetLabel(v, fmt.Sprintf("%s-access%d", spec.Name, v))
		}
	}

	// Step 1: preferential-attachment spanning tree over core nodes.
	degree := make([]int, core)
	for v := 1; v < core; v++ {
		u := pickPreferential(rng, degree[:v])
		mustAdd(g, u, v)
		degree[u]++
		degree[v]++
	}

	// Step 2a: eliminate degree-1 core nodes.
	extra := spec.Links - spec.Dangling - (core - 1)
	for extra > 0 {
		u := lowestDegreeOne(degree)
		if u < 0 {
			break
		}
		v := pickNonNeighbor(rng, g, u, core)
		if v < 0 {
			return nil, fmt.Errorf("topology: %s: cannot repair degree-1 core node %d", spec.Name, u)
		}
		mustAdd(g, u, v)
		degree[u]++
		degree[v]++
		extra--
	}
	if lowestDegreeOne(degree) >= 0 {
		return nil, fmt.Errorf("topology: %s: not enough links to avoid extra dangling core nodes", spec.Name)
	}

	// Step 2b: spend remaining extra edges preferentially.
	for extra > 0 {
		u := pickPreferential(rng, degree)
		v := pickNonNeighbor(rng, g, u, core)
		if v < 0 {
			// u is saturated; fall back to any non-saturated pair.
			u, v = anyMissingPair(g, core)
			if u < 0 {
				return nil, fmt.Errorf("topology: %s: core is complete before placing all links", spec.Name)
			}
		}
		mustAdd(g, u, v)
		degree[u]++
		degree[v]++
		extra--
	}

	// Step 3: attach dangling nodes.
	for v := core; v < spec.Nodes; v++ {
		u := pickPreferential(rng, degree)
		mustAdd(g, u, v)
		degree[u]++
	}

	topo := &Topology{Spec: spec, Graph: g}
	topo.CandidateClients = candidateClients(spec, g, rng)
	if err := topo.Verify(); err != nil {
		return nil, err
	}
	return topo, nil
}

// MustBuild is Build for the three vetted paper specs, panicking on error.
// The specs are verified by tests, so a failure indicates memory corruption
// or a modified spec, both programming errors.
func MustBuild(spec Spec) *Topology {
	t, err := Build(spec)
	if err != nil {
		panic(fmt.Sprintf("topology: %v", err))
	}
	return t
}

// Verify checks that the built graph matches the spec (Table I row) and is
// connected.
func (t *Topology) Verify() error {
	g := t.Graph
	if g.NumNodes() != t.Spec.Nodes {
		return fmt.Errorf("topology: %s: %d nodes, want %d", t.Spec.Name, g.NumNodes(), t.Spec.Nodes)
	}
	if g.NumEdges() != t.Spec.Links {
		return fmt.Errorf("topology: %s: %d links, want %d", t.Spec.Name, g.NumEdges(), t.Spec.Links)
	}
	if d := len(g.DanglingNodes()); d != t.Spec.Dangling {
		return fmt.Errorf("topology: %s: %d dangling nodes, want %d", t.Spec.Name, d, t.Spec.Dangling)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("topology: %s: %w", t.Spec.Name, err)
	}
	if len(t.CandidateClients) == 0 {
		return fmt.Errorf("topology: %s: no candidate clients", t.Spec.Name)
	}
	return nil
}

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	ISP      string
	Nodes    int
	Links    int
	Dangling int
}

// TableI computes the Table I characteristics from the actual built graphs
// (not the specs), so the experiment output reflects what the algorithms
// really consumed.
func TableI() ([]TableIRow, error) {
	rows := make([]TableIRow, 0, 3)
	for _, spec := range Specs() {
		t, err := Build(spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIRow{
			ISP:      spec.Name,
			Nodes:    t.Graph.NumNodes(),
			Links:    t.Graph.NumEdges(),
			Dangling: len(t.Graph.DanglingNodes()),
		})
	}
	return rows, nil
}

func validateSpec(spec Spec) error {
	core := spec.Nodes - spec.Dangling
	switch {
	case spec.Nodes <= 0:
		return fmt.Errorf("topology: %s: non-positive node count", spec.Name)
	case spec.Dangling < 0 || spec.Dangling >= spec.Nodes:
		return fmt.Errorf("topology: %s: dangling count %d out of range", spec.Name, spec.Dangling)
	case core == 1 && spec.Links != spec.Dangling:
		return fmt.Errorf("topology: %s: single-core spec needs links == dangling", spec.Name)
	case spec.Links < spec.Dangling+core-1:
		return fmt.Errorf("topology: %s: too few links for a connected graph", spec.Name)
	case int64(spec.Links-spec.Dangling) > int64(core)*int64(core-1)/2:
		return fmt.Errorf("topology: %s: too many core links", spec.Name)
	}
	return nil
}

// candidateClients implements the Section VI-A client selection: dangling
// nodes, plus six randomly chosen non-dangling nodes for Abovenet.
func candidateClients(spec Spec, g *graph.Graph, rng *rand.Rand) []graph.NodeID {
	clients := g.DanglingNodes()
	if spec.Name == Abovenet.Name {
		chosen := map[int]bool{}
		for _, c := range clients {
			chosen[c] = true
		}
		for len(clients) < len(g.DanglingNodes())+6 {
			v := rng.Intn(g.NumNodes())
			if !chosen[v] {
				chosen[v] = true
				clients = append(clients, v)
			}
		}
	}
	sort.Ints(clients)
	return clients
}

func mustAdd(g *graph.Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(fmt.Sprintf("topology: internal edge conflict: %v", err))
	}
}

// pickPreferential picks an index with probability proportional to
// degree+1 (the +1 keeps isolated nodes reachable).
func pickPreferential(rng *rand.Rand, degree []int) int {
	total := len(degree)
	for _, d := range degree {
		total += d
	}
	r := rng.Intn(total)
	for i, d := range degree {
		r -= d + 1
		if r < 0 {
			return i
		}
	}
	return len(degree) - 1
}

// lowestDegreeOne returns the smallest index with degree exactly 1, or -1.
func lowestDegreeOne(degree []int) int {
	for i, d := range degree {
		if d == 1 {
			return i
		}
	}
	return -1
}

// pickNonNeighbor returns a random node in [0, core) that is neither u nor
// adjacent to u, or -1 if none exists.
func pickNonNeighbor(rng *rand.Rand, g *graph.Graph, u, core int) int {
	var candidates []int
	for v := 0; v < core; v++ {
		if v != u && !g.HasEdge(u, v) {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rng.Intn(len(candidates))]
}

// anyMissingPair returns some non-adjacent core pair, or (-1, -1).
func anyMissingPair(g *graph.Graph, core int) (int, int) {
	for u := 0; u < core; u++ {
		for v := u + 1; v < core; v++ {
			if !g.HasEdge(u, v) {
				return u, v
			}
		}
	}
	return -1, -1
}
