package topology

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestBuildMatchesTableI(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			topo, err := Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			g := topo.Graph
			if g.NumNodes() != spec.Nodes {
				t.Errorf("nodes = %d, want %d", g.NumNodes(), spec.Nodes)
			}
			if g.NumEdges() != spec.Links {
				t.Errorf("links = %d, want %d", g.NumEdges(), spec.Links)
			}
			if d := len(g.DanglingNodes()); d != spec.Dangling {
				t.Errorf("dangling = %d, want %d", d, spec.Dangling)
			}
			if !g.Connected() {
				t.Error("graph must be connected")
			}
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Tiscali)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Tiscali)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ across builds")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	if len(a.CandidateClients) != len(b.CandidateClients) {
		t.Fatal("client counts differ across builds")
	}
	for i := range a.CandidateClients {
		if a.CandidateClients[i] != b.CandidateClients[i] {
			t.Fatal("candidate clients differ across builds")
		}
	}
}

func TestCandidateClients(t *testing.T) {
	ab := MustBuild(Abovenet)
	// 2 dangling + 6 extra = 8.
	if got := len(ab.CandidateClients); got != 8 {
		t.Fatalf("Abovenet clients = %d, want 8", got)
	}
	ti := MustBuild(Tiscali)
	if got := len(ti.CandidateClients); got != 13 {
		t.Fatalf("Tiscali clients = %d, want 13", got)
	}
	att := MustBuild(ATT)
	if got := len(att.CandidateClients); got != 78 {
		t.Fatalf("AT&T clients = %d, want 78", got)
	}
	// All dangling nodes must be candidate clients.
	dangling := att.Graph.DanglingNodes()
	inClients := map[int]bool{}
	for _, c := range att.CandidateClients {
		inClients[c] = true
	}
	for _, d := range dangling {
		if !inClients[d] {
			t.Fatalf("dangling node %d missing from clients", d)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Tiscali")
	if err != nil || s.Nodes != 51 {
		t.Fatalf("ByName(Tiscali) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestTableI(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	want := []TableIRow{
		{ISP: "Abovenet", Nodes: 22, Links: 80, Dangling: 2},
		{ISP: "Tiscali", Nodes: 51, Links: 129, Dangling: 13},
		{ISP: "AT&T", Nodes: 108, Links: 141, Dangling: 78},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
}

func TestValidateSpecErrors(t *testing.T) {
	cases := []Spec{
		{Name: "zero", Nodes: 0},
		{Name: "dangling-too-big", Nodes: 4, Dangling: 4, Links: 3},
		{Name: "too-few-links", Nodes: 10, Dangling: 2, Links: 5},
		{Name: "too-many-core-links", Nodes: 5, Dangling: 2, Links: 20},
	}
	for _, spec := range cases {
		if _, err := Build(spec); err == nil {
			t.Errorf("Build(%s) should fail", spec.Name)
		}
	}
}

func TestNodeLabels(t *testing.T) {
	topo := MustBuild(Abovenet)
	if !strings.HasPrefix(topo.Graph.Label(0), "Abovenet-pop") {
		t.Fatalf("core label = %q", topo.Graph.Label(0))
	}
	if !strings.HasPrefix(topo.Graph.Label(21), "Abovenet-access") {
		t.Fatalf("access label = %q", topo.Graph.Label(21))
	}
}

func TestRandomConnected(t *testing.T) {
	g, err := RandomConnected(20, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 || g.NumEdges() != 40 {
		t.Fatalf("shape = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("must be connected")
	}
}

func TestRandomConnectedErrors(t *testing.T) {
	if _, err := RandomConnected(0, 0, 1); err == nil {
		t.Fatal("n=0 should fail")
	}
	if _, err := RandomConnected(5, 3, 1); err == nil {
		t.Fatal("m < n-1 should fail")
	}
	if _, err := RandomConnected(4, 7, 1); err == nil {
		t.Fatal("m > C(n,2) should fail")
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a, _ := RandomConnected(15, 30, 99)
	b, _ := RandomConnected(15, 30, 99)
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed should give same graph")
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(50, 3, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// clique edges + m per new node.
	wantEdges := 3 + (50-3)*2
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if !g.Connected() {
		t.Fatal("BA graph must be connected")
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(10, 2, 3, 1); err == nil {
		t.Fatal("m > m0 should fail")
	}
	if _, err := BarabasiAlbert(2, 3, 1, 1); err == nil {
		t.Fatal("n < m0 should fail")
	}
}

func TestLineStarGrid(t *testing.T) {
	l, err := Line(5)
	if err != nil || l.NumEdges() != 4 {
		t.Fatalf("Line: %v %d", err, l.NumEdges())
	}
	s, err := Star(4)
	if err != nil || s.NumNodes() != 5 || s.Degree(0) != 4 {
		t.Fatalf("Star wrong")
	}
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("Grid nodes = %d", g.NumNodes())
	}
	// Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("Grid edges = %d, want 17", g.NumEdges())
	}
	if _, err := Line(0); err == nil {
		t.Fatal("Line(0) should fail")
	}
	if _, err := Star(0); err == nil {
		t.Fatal("Star(0) should fail")
	}
	if _, err := Grid(0, 3); err == nil {
		t.Fatal("Grid(0,3) should fail")
	}
}

func TestFig1Example(t *testing.T) {
	g, clients, hosts := Fig1Example()
	if g.NumNodes() != 9 || g.NumEdges() != 8 {
		t.Fatalf("shape = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if len(clients) != 4 || len(hosts) != 4 {
		t.Fatal("client/host sets wrong")
	}
	if g.Label(0) != "r" {
		t.Fatalf("root label = %q", g.Label(0))
	}
	// Each client hangs off its host; hosts hang off r.
	for i, h := range hosts {
		if !g.HasEdge(0, h) {
			t.Fatalf("missing r—%s edge", g.Label(h))
		}
		if !g.HasEdge(h, clients[i]) {
			t.Fatalf("missing %s—%s edge", g.Label(h), g.Label(clients[i]))
		}
	}
	var _ *graph.Graph = g
}
