package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// This file provides generic random-graph generators used by tests,
// examples, and the ablation benchmarks. They are independent of the
// Table I calibrated builders in topology.go.

// RandomConnected generates a connected random graph with n nodes and m
// edges: a uniform random spanning tree (random-parent construction) plus
// uniformly random extra edges. It returns an error if m is infeasible.
func RandomConnected(n, m int, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: RandomConnected: n = %d", n)
	}
	if m < n-1 || int64(m) > int64(n)*int64(n-1)/2 {
		return nil, fmt.Errorf("topology: RandomConnected: m = %d infeasible for n = %d", m, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	for g.NumEdges() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// BarabasiAlbert generates a preferential-attachment graph: a seed clique
// of m0 nodes, then each new node attaches to m distinct existing nodes
// chosen proportionally to degree. Produces ISP-like heavy-tailed degree
// distributions.
func BarabasiAlbert(n, m0, m int, seed int64) (*graph.Graph, error) {
	if m0 < 1 || m < 1 || m > m0 || n < m0 {
		return nil, fmt.Errorf("topology: BarabasiAlbert: bad parameters n=%d m0=%d m=%d", n, m0, m)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	// Seed clique.
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	// endpoints holds one entry per edge endpoint, giving degree-weighted
	// sampling by uniform choice.
	var endpoints []int
	for _, e := range g.Edges() {
		endpoints = append(endpoints, e.U, e.V)
	}
	for v := m0; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			var u int
			if len(endpoints) == 0 {
				u = rng.Intn(v)
			} else {
				u = endpoints[rng.Intn(len(endpoints))]
			}
			if u != v && !chosen[u] {
				chosen[u] = true
			}
		}
		for u := range chosen {
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
			endpoints = append(endpoints, u, v)
		}
	}
	return g, nil
}

// Line generates the path graph 0-1-...-(n-1), a convenient worst case for
// identifiability (interior nodes are pairwise confusable from few paths).
func Line(n int) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: Line: n = %d", n)
	}
	g := graph.New(n)
	for v := 1; v < n; v++ {
		if err := g.AddEdge(v-1, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Star generates a star with the given number of leaves around center 0.
// It reproduces the shape of the paper's Fig. 1 motivating example when
// combined with a second tier of leaves.
func Star(leaves int) (*graph.Graph, error) {
	if leaves < 1 {
		return nil, fmt.Errorf("topology: Star: leaves = %d", leaves)
	}
	g := graph.New(leaves + 1)
	for v := 1; v <= leaves; v++ {
		if err := g.AddEdge(0, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid generates the rows×cols grid graph; node (r, c) has ID r*cols + c.
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topology: Grid: %dx%d", rows, cols)
	}
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Fig1Example builds the paper's Fig. 1 topology: a root r connected to
// four candidate hosts {a, b, c, d}, each host connected to one client of
// {e, f, g, h}. Node IDs: r=0, a..d = 1..4, e..h = 5..8. It returns the
// graph plus the client and candidate-host ID sets.
func Fig1Example() (g *graph.Graph, clients, hosts []graph.NodeID) {
	g = graph.New(9)
	labels := []string{"r", "a", "b", "c", "d", "e", "f", "g", "h"}
	for v, l := range labels {
		g.SetLabel(v, l)
	}
	for host := 1; host <= 4; host++ {
		mustAdd(g, 0, host)      // r — host
		mustAdd(g, host, host+4) // host — its client
	}
	return g, []graph.NodeID{5, 6, 7, 8}, []graph.NodeID{1, 2, 3, 4}
}
