package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// This file generates large hierarchical ISP topologies — the
// core/aggregation/edge/access structure of a production network at
// 10k–100k nodes, far beyond the Table I maps. The paper's evaluation
// tops out at AT&T (108 nodes), but its submodularity results hold at
// any scale; these generators supply the instances on which the
// stochastic and warm-start placement engines are exercised and
// benchmarked.

// HierarchySpec describes a synthetic hierarchical ISP: a ring-plus-
// chords backbone of core routers, a dual-homed aggregation tier per
// core, an edge-router tier per aggregation router, and degree-1 access
// hosts hanging off every edge router. All randomness (chord endpoints,
// dual-home uplinks) is drawn from Seed, so a spec always builds the
// same graph.
type HierarchySpec struct {
	// Name labels the topology in specs and experiment output.
	Name string
	// Core is the number of backbone routers (≥ 3; they form a ring).
	Core int
	// AggPerCore is the number of aggregation routers under each core
	// router (≥ 1). Each is homed to its core router and dual-homed to a
	// second, randomly chosen one.
	AggPerCore int
	// EdgePerAgg is the number of edge routers under each aggregation
	// router (≥ 1). With more than one aggregation router per core, each
	// edge router is dual-homed to a random sibling aggregation router.
	EdgePerAgg int
	// HostsPerEdge is the number of degree-1 access hosts per edge
	// router (≥ 1). Hosts are the dangling nodes and become the
	// candidate client set.
	HostsPerEdge int
	// Seed drives every random choice in the construction.
	Seed int64
}

// NumNodes returns the total node count the spec builds:
// Core · (1 + AggPerCore · (1 + EdgePerAgg · (1 + HostsPerEdge))).
func (hs HierarchySpec) NumNodes() int {
	return hs.Core * (1 + hs.AggPerCore*(1+hs.EdgePerAgg*(1+hs.HostsPerEdge)))
}

// Hierarchy10k and Hierarchy100k are the reference specs the
// large-scale placement benchmarks run against: ~10k and ~100k nodes
// with production-like tier fan-outs.
var (
	Hierarchy10k  = HierarchySpec{Name: "hier-10k", Core: 8, AggPerCore: 4, EdgePerAgg: 8, HostsPerEdge: 38, Seed: 2001}
	Hierarchy100k = HierarchySpec{Name: "hier-100k", Core: 10, AggPerCore: 5, EdgePerAgg: 10, HostsPerEdge: 198, Seed: 2002}
)

// HierarchyForNodes returns a spec of roughly n total nodes (within one
// host per edge router) using the reference fan-outs: 8 cores, 4
// aggregation routers each, 8 edge routers per aggregation. The host
// tier absorbs the remainder, mirroring how real networks scale —
// access grows, the backbone does not.
func HierarchyForNodes(name string, n int, seed int64) HierarchySpec {
	hs := HierarchySpec{Name: name, Core: 8, AggPerCore: 4, EdgePerAgg: 8, Seed: seed}
	if n < 2000 {
		hs.Core, hs.AggPerCore, hs.EdgePerAgg = 4, 2, 3
	}
	infra := hs.Core * (1 + hs.AggPerCore*(1+hs.EdgePerAgg))
	edges := hs.Core * hs.AggPerCore * hs.EdgePerAgg
	hosts := (n - infra + edges/2) / edges
	if hosts < 1 {
		hosts = 1
	}
	hs.HostsPerEdge = hosts
	return hs
}

// BuildHierarchy generates the hierarchical topology for a spec. The
// construction is deterministic in the spec:
//
//  1. core routers in a ring, plus ⌈Core/2⌉ random chord links for
//     backbone redundancy;
//  2. each aggregation router linked to its own core router and
//     dual-homed to a second random core;
//  3. each edge router linked to its aggregation router and, when the
//     core has more than one aggregation router, dual-homed to a random
//     sibling;
//  4. HostsPerEdge degree-1 access hosts per edge router.
//
// The result is connected; the returned Topology's Spec carries the
// realized node/link/dangling counts (so Verify applies) and
// CandidateClients is the full host tier.
func BuildHierarchy(hs HierarchySpec) (*Topology, error) {
	switch {
	case hs.Core < 3:
		return nil, fmt.Errorf("topology: %s: hierarchy needs ≥ 3 core routers, got %d", hs.Name, hs.Core)
	case hs.AggPerCore < 1 || hs.EdgePerAgg < 1 || hs.HostsPerEdge < 1:
		return nil, fmt.Errorf("topology: %s: hierarchy fan-outs must be ≥ 1", hs.Name)
	}
	rng := rand.New(rand.NewSource(hs.Seed))
	numAgg := hs.Core * hs.AggPerCore
	numEdge := numAgg * hs.EdgePerAgg
	numHosts := numEdge * hs.HostsPerEdge
	aggBase := hs.Core
	edgeBase := aggBase + numAgg
	hostBase := edgeBase + numEdge

	g := graph.New(hostBase + numHosts)
	for v := 0; v < hs.Core; v++ {
		g.SetLabel(v, fmt.Sprintf("%s-core%d", hs.Name, v))
	}

	// Step 1: core ring + chords. AddEdge rejects duplicates, so a chord
	// that collides with the ring (or an earlier chord) is simply
	// re-drawn; the loop is bounded because the backbone is tiny.
	for i := 0; i < hs.Core; i++ {
		mustAdd(g, i, (i+1)%hs.Core)
	}
	if hs.Core > 3 {
		for placed := 0; placed < (hs.Core+1)/2; {
			u := rng.Intn(hs.Core)
			v := rng.Intn(hs.Core)
			if u == v {
				continue
			}
			if g.AddEdge(u, v) == nil {
				placed++
			}
		}
	}

	// Step 2: aggregation tier, dual-homed across cores.
	for a := 0; a < numAgg; a++ {
		core := a / hs.AggPerCore
		agg := aggBase + a
		g.SetLabel(agg, fmt.Sprintf("%s-agg%d.%d", hs.Name, core, a%hs.AggPerCore))
		mustAdd(g, core, agg)
		backup := (core + 1 + rng.Intn(hs.Core-1)) % hs.Core
		mustAdd(g, backup, agg)
	}

	// Step 3: edge tier, dual-homed across sibling aggregation routers
	// under the same core.
	for e := 0; e < numEdge; e++ {
		a := e / hs.EdgePerAgg
		core := a / hs.AggPerCore
		edge := edgeBase + e
		g.SetLabel(edge, fmt.Sprintf("%s-edge%d.%d", hs.Name, a, e%hs.EdgePerAgg))
		mustAdd(g, aggBase+a, edge)
		if hs.AggPerCore > 1 {
			sib := a%hs.AggPerCore + 1 + rng.Intn(hs.AggPerCore-1)
			sibling := core*hs.AggPerCore + sib%hs.AggPerCore
			mustAdd(g, aggBase+sibling, edge)
		}
	}

	// Step 4: access hosts — the dangling tier and candidate clients.
	clients := make([]graph.NodeID, 0, numHosts)
	for h := 0; h < numHosts; h++ {
		host := hostBase + h
		g.SetLabel(host, fmt.Sprintf("%s-host%d", hs.Name, h))
		mustAdd(g, edgeBase+h/hs.HostsPerEdge, host)
		clients = append(clients, host)
	}

	topo := &Topology{
		Spec: Spec{
			Name:     hs.Name,
			Nodes:    g.NumNodes(),
			Links:    g.NumEdges(),
			Dangling: len(g.DanglingNodes()),
			Seed:     hs.Seed,
		},
		Graph:            g,
		CandidateClients: clients,
	}
	if err := topo.Verify(); err != nil {
		return nil, err
	}
	return topo, nil
}
