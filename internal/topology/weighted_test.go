package topology

import (
	"testing"
)

func TestBuildWeightedShape(t *testing.T) {
	topo, err := BuildWeighted(Abovenet, 1, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Verify(); err != nil {
		t.Fatal(err)
	}
	sawNonUnit := false
	for _, e := range topo.Graph.Edges() {
		if e.Weight < 1 || e.Weight >= 10 {
			t.Fatalf("weight %v outside [1, 10)", e.Weight)
		}
		if e.Weight != 1 {
			sawNonUnit = true
		}
	}
	if !sawNonUnit {
		t.Fatal("expected heterogeneous weights")
	}
}

func TestBuildWeightedDeterministic(t *testing.T) {
	a, err := BuildWeighted(Tiscali, 0.5, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWeighted(Tiscali, 0.5, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestBuildWeightedConstantRange(t *testing.T) {
	topo, err := BuildWeighted(Abovenet, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range topo.Graph.Edges() {
		if e.Weight != 2 {
			t.Fatalf("weight %v, want constant 2", e.Weight)
		}
	}
}

func TestBuildWeightedValidation(t *testing.T) {
	if _, err := BuildWeighted(Abovenet, 0, 1, 1); err == nil {
		t.Fatal("zero min weight should error")
	}
	if _, err := BuildWeighted(Abovenet, 3, 2, 1); err == nil {
		t.Fatal("inverted range should error")
	}
	if _, err := BuildWeighted(Spec{Name: "bad"}, 1, 2, 1); err == nil {
		t.Fatal("bad spec should propagate")
	}
}
