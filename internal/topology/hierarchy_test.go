package topology

import (
	"testing"

	"repro/internal/graph"
)

func TestBuildHierarchySmall(t *testing.T) {
	hs := HierarchySpec{Name: "h", Core: 4, AggPerCore: 2, EdgePerAgg: 3, HostsPerEdge: 2, Seed: 7}
	topo, err := BuildHierarchy(hs)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Graph.NumNodes(); got != hs.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", got, hs.NumNodes())
	}
	wantHosts := hs.Core * hs.AggPerCore * hs.EdgePerAgg * hs.HostsPerEdge
	if len(topo.CandidateClients) != wantHosts {
		t.Fatalf("%d candidate clients, want %d (the host tier)", len(topo.CandidateClients), wantHosts)
	}
	if topo.Spec.Dangling != wantHosts {
		t.Fatalf("%d dangling, want %d", topo.Spec.Dangling, wantHosts)
	}
	// Every host is degree-1 and every candidate client is a host.
	hostBase := topo.Graph.NumNodes() - wantHosts
	for _, c := range topo.CandidateClients {
		if c < graph.NodeID(hostBase) {
			t.Fatalf("candidate client %d below the host tier (base %d)", c, hostBase)
		}
		if topo.Graph.Degree(c) != 1 {
			t.Fatalf("host %d has degree %d, want 1", c, topo.Graph.Degree(c))
		}
	}
	if err := topo.Graph.Validate(); err != nil {
		t.Fatalf("graph not connected/simple: %v", err)
	}
}

func TestBuildHierarchyDeterministic(t *testing.T) {
	a, err := BuildHierarchy(Hierarchy10k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildHierarchy(Hierarchy10k)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same spec built different graph sizes")
	}
	// Edge sets must match exactly, in insertion order.
	ae, be := a.Graph.Edges(), b.Graph.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	// A different seed changes the wiring.
	alt := Hierarchy10k
	alt.Seed++
	c, err := BuildHierarchy(alt)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	ce := c.Graph.Edges()
	for i := range ae {
		if ae[i] != ce[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical wiring")
	}
}

func TestHierarchyReferenceSpecSizes(t *testing.T) {
	if n := Hierarchy10k.NumNodes(); n < 10_000 || n > 11_000 {
		t.Fatalf("Hierarchy10k builds %d nodes, want ~10k", n)
	}
	if n := Hierarchy100k.NumNodes(); n < 99_000 || n > 101_000 {
		t.Fatalf("Hierarchy100k builds %d nodes, want ~100k", n)
	}
}

func TestHierarchyForNodes(t *testing.T) {
	for _, target := range []int{500, 2_000, 10_000, 50_000} {
		hs := HierarchyForNodes("t", target, 1)
		got := hs.NumNodes()
		if got < target/2 || got > target*2 {
			t.Fatalf("HierarchyForNodes(%d) builds %d nodes — not within 2x", target, got)
		}
	}
}

func TestBuildHierarchyRejectsBadSpecs(t *testing.T) {
	bad := []HierarchySpec{
		{Name: "no-core", Core: 2, AggPerCore: 1, EdgePerAgg: 1, HostsPerEdge: 1},
		{Name: "no-agg", Core: 3, AggPerCore: 0, EdgePerAgg: 1, HostsPerEdge: 1},
		{Name: "no-hosts", Core: 3, AggPerCore: 1, EdgePerAgg: 1, HostsPerEdge: 0},
	}
	for _, hs := range bad {
		if _, err := BuildHierarchy(hs); err == nil {
			t.Fatalf("%s: expected an error", hs.Name)
		}
	}
}
