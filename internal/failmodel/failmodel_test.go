package failmodel

import (
	"math"
	"testing"
)

func TestGenerateValidation(t *testing.T) {
	base := Config{NumNodes: 5, MTBF: 10, MTTR: 2, Horizon: 100, Seed: 1}
	bad := []func(*Config){
		func(c *Config) { c.NumNodes = 0 },
		func(c *Config) { c.MTBF = 0 },
		func(c *Config) { c.MTTR = -1 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.MaxConcurrent = -1 },
		func(c *Config) { c.MTBF = math.NaN() },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestGenerateOrderedAndAlternating(t *testing.T) {
	events, err := Generate(Config{NumNodes: 8, MTBF: 10, MTTR: 3, Horizon: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("expected some events over a long horizon")
	}
	lastTime := 0.0
	state := map[int]bool{}
	for i, e := range events {
		if e.Time < lastTime {
			t.Fatalf("event %d out of order", i)
		}
		lastTime = e.Time
		if e.Time > 500 {
			t.Fatalf("event %d beyond horizon", i)
		}
		if state[e.Node] == e.Down {
			t.Fatalf("event %d: node %d repeated %v transition", i, e.Node, e.Down)
		}
		state[e.Node] = e.Down
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{NumNodes: 6, MTBF: 5, MTTR: 2, Horizon: 200, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGenerateSeedChangesSchedule(t *testing.T) {
	cfg := Config{NumNodes: 6, MTBF: 5, MTTR: 2, Horizon: 200, Seed: 7}
	a, _ := Generate(cfg)
	cfg.Seed = 8
	b, _ := Generate(cfg)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should give different schedules")
	}
}

func TestMaxConcurrentRespected(t *testing.T) {
	events, err := Generate(Config{
		NumNodes: 20, MTBF: 2, MTTR: 10, Horizon: 300, MaxConcurrent: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxConcurrentDown(events); got > 2 {
		t.Fatalf("peak concurrency %d exceeds cap 2", got)
	}
	if got := MaxConcurrentDown(events); got == 0 {
		t.Fatal("expected some failures")
	}
}

func TestDownAt(t *testing.T) {
	events := []Event{
		{Time: 1, Node: 3, Down: true},
		{Time: 2, Node: 5, Down: true},
		{Time: 4, Node: 3, Down: false},
	}
	if got := DownAt(events, 0.5); len(got) != 0 {
		t.Fatalf("DownAt(0.5) = %v", got)
	}
	if got := DownAt(events, 2); !got[3] || !got[5] || len(got) != 2 {
		t.Fatalf("DownAt(2) = %v", got)
	}
	if got := DownAt(events, 10); got[3] || !got[5] {
		t.Fatalf("DownAt(10) = %v", got)
	}
}

func TestMeanSojournRoughlyMatchesMTBF(t *testing.T) {
	// Statistical smoke test: with MTTR ≪ MTBF the failure count over the
	// horizon should be near NumNodes·Horizon/MTBF (±50%).
	cfg := Config{NumNodes: 50, MTBF: 20, MTTR: 0.1, Horizon: 1000, Seed: 11}
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, e := range events {
		if e.Down {
			failures++
		}
	}
	expected := float64(cfg.NumNodes) * cfg.Horizon / cfg.MTBF
	if float64(failures) < expected/2 || float64(failures) > expected*2 {
		t.Fatalf("failures = %d, expected around %.0f", failures, expected)
	}
}
