// Package failmodel generates reproducible node failure/recovery
// schedules. It stands in for the production failure traces the paper's
// setting assumes (software bugs, misconfigurations, black holes): each
// node alternates exponentially distributed up and down sojourns
// (MTBF/MTTR), optionally capped to at most k concurrent failures so the
// generated scenario matches the monitoring design budget. All randomness
// flows from the seed.
package failmodel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config parameterizes a schedule.
type Config struct {
	// NumNodes is the node universe size.
	NumNodes int
	// MTBF is the mean up time before a failure; must be positive.
	MTBF float64
	// MTTR is the mean down time before recovery; must be positive.
	MTTR float64
	// Horizon is the schedule length in virtual time; events beyond it
	// are dropped.
	Horizon float64
	// MaxConcurrent caps the number of simultaneously failed nodes
	// (0 = unlimited). Failures that would exceed the cap are postponed
	// by redrawing the up time.
	MaxConcurrent int
	// Seed drives the draws.
	Seed int64
}

// Event is one node state transition.
type Event struct {
	Time float64
	Node int
	// Down is true for a failure, false for a recovery.
	Down bool
}

// Generate produces the time-ordered transition schedule. Ordering ties
// break by (node, down-before-up) so output is fully deterministic.
func Generate(cfg Config) ([]Event, error) {
	switch {
	case cfg.NumNodes <= 0:
		return nil, fmt.Errorf("failmodel: NumNodes = %d", cfg.NumNodes)
	case cfg.MTBF <= 0 || math.IsNaN(cfg.MTBF):
		return nil, fmt.Errorf("failmodel: MTBF = %v", cfg.MTBF)
	case cfg.MTTR <= 0 || math.IsNaN(cfg.MTTR):
		return nil, fmt.Errorf("failmodel: MTTR = %v", cfg.MTTR)
	case cfg.Horizon <= 0 || math.IsNaN(cfg.Horizon):
		return nil, fmt.Errorf("failmodel: Horizon = %v", cfg.Horizon)
	case cfg.MaxConcurrent < 0:
		return nil, fmt.Errorf("failmodel: MaxConcurrent = %d", cfg.MaxConcurrent)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var events []Event
	down := make([]bool, cfg.NumNodes)
	// clock[v] is node v's next pending transition time.
	clock := make([]float64, cfg.NumNodes)
	for v := 0; v < cfg.NumNodes; v++ {
		clock[v] = rng.ExpFloat64() * cfg.MTBF
	}

	// Repeatedly take the node with the earliest pending transition.
	concurrent := 0
	for {
		best := -1
		for v := 0; v < cfg.NumNodes; v++ {
			if clock[v] > cfg.Horizon {
				continue
			}
			if best < 0 || clock[v] < clock[best] || (clock[v] == clock[best] && v < best) {
				best = v
			}
		}
		if best < 0 {
			break
		}
		v := best
		t := clock[v]
		if down[v] {
			// Recovery.
			events = append(events, Event{Time: t, Node: v, Down: false})
			down[v] = false
			concurrent--
			clock[v] = t + rng.ExpFloat64()*cfg.MTBF
			continue
		}
		// Failure attempt.
		if cfg.MaxConcurrent > 0 && concurrent >= cfg.MaxConcurrent {
			// Postpone: the node stays up for another drawn sojourn.
			clock[v] = t + rng.ExpFloat64()*cfg.MTBF
			continue
		}
		events = append(events, Event{Time: t, Node: v, Down: true})
		down[v] = true
		concurrent++
		clock[v] = t + rng.ExpFloat64()*cfg.MTTR
	}

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Node < events[j].Node
	})
	return events, nil
}

// DownAt replays the schedule and returns the set of nodes down at time t
// (transitions at exactly t are applied).
func DownAt(events []Event, t float64) map[int]bool {
	down := map[int]bool{}
	for _, e := range events {
		if e.Time > t {
			break
		}
		if e.Down {
			down[e.Node] = true
		} else {
			delete(down, e.Node)
		}
	}
	return down
}

// MaxConcurrentDown returns the peak number of simultaneously failed
// nodes over the schedule.
func MaxConcurrentDown(events []Event) int {
	cur, peak := 0, 0
	for _, e := range events {
		if e.Down {
			cur++
			if cur > peak {
				peak = cur
			}
		} else {
			cur--
		}
	}
	return peak
}
