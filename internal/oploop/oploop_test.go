package oploop

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

func tiscaliSetup(t testing.TB, algo string) (*routing.Router, []netsim.Pair) {
	t.Helper()
	topo := topology.MustBuild(topology.Tiscali)
	router, err := routing.New(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]placement.Service, 3)
	for s := range services {
		services[s] = placement.Service{Name: "svc", Clients: topo.CandidateClients[3*s : 3*s+3]}
	}
	inst, err := placement.NewInstance(router, services, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		t.Fatal(err)
	}
	var pl placement.Placement
	switch algo {
	case "gd":
		res, err := placement.Greedy(inst, obj)
		if err != nil {
			t.Fatal(err)
		}
		pl = res.Placement
	case "qos":
		res, err := placement.QoS(inst, obj)
		if err != nil {
			t.Fatal(err)
		}
		pl = res.Placement
	default:
		t.Fatalf("unknown algo %q", algo)
	}
	seen := map[netsim.Pair]bool{}
	var conns []netsim.Pair
	for s, h := range pl.Hosts {
		for _, c := range services[s].Clients {
			p := netsim.Pair{Client: c, Host: h}
			if !seen[p] {
				seen[p] = true
				conns = append(conns, p)
			}
		}
	}
	return router, conns
}

func TestRunValidation(t *testing.T) {
	router, conns := tiscaliSetup(t, "gd")
	if _, err := Run(nil, conns, Config{ProbePeriod: 1}); err == nil {
		t.Fatal("nil router should error")
	}
	if _, err := Run(router, nil, Config{ProbePeriod: 1}); err == nil {
		t.Fatal("no connections should error")
	}
	if _, err := Run(router, conns, Config{ProbePeriod: 0}); err == nil {
		t.Fatal("zero probe period should error")
	}
	if _, err := Run(router, conns, Config{ProbePeriod: 1, MTBF: -1}); err == nil {
		t.Fatal("bad failure model should propagate")
	}
}

func TestRunProducesEpisodes(t *testing.T) {
	router, conns := tiscaliSetup(t, "gd")
	out, err := Run(router, conns, Config{
		ProbePeriod: 5,
		Horizon:     2000,
		MTBF:        800,
		MTTR:        60,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Episodes) == 0 {
		t.Fatal("expected failure episodes over a long horizon")
	}
	if out.Covered == 0 {
		t.Fatal("placement should cover nodes")
	}
	for _, ep := range out.Episodes {
		if ep.End <= ep.Start {
			t.Fatalf("degenerate episode %+v", ep)
		}
		if ep.Detected && ep.DetectionDelay < 0 {
			t.Fatalf("negative detection delay %+v", ep)
		}
		if ep.Detected && ep.DetectionDelay > 60+5 {
			t.Fatalf("detection after episode end: %+v", ep)
		}
		if ep.Pinpointed && !ep.Diagnosed {
			t.Fatalf("pinpointed but not diagnosed: %+v", ep)
		}
	}
	// Statistical sanity over this seed: rates are in [0, 1] and
	// consistent with each other.
	if out.DetectionRate() < 0 || out.DetectionRate() > 1 {
		t.Fatalf("detection rate %v", out.DetectionRate())
	}
	if out.PinpointRate() > out.DetectionRate() {
		t.Fatal("cannot pinpoint more episodes than detected")
	}
}

func TestDetectionDelayBoundedByProbePeriod(t *testing.T) {
	// With probing every p units and long episodes, detection happens at
	// the first probe round after the failure: delay < p + RTT slack.
	router, conns := tiscaliSetup(t, "gd")
	out, err := Run(router, conns, Config{
		ProbePeriod: 10,
		Horizon:     3000,
		MTBF:        700,
		MTTR:        100, // ≫ probe period
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range out.Episodes {
		if ep.Detected && ep.DetectionDelay > 10+2 {
			t.Fatalf("delay %v exceeds probe period + RTT slack: %+v", ep.DetectionDelay, ep)
		}
	}
}

func TestGDDetectsAtLeastAsManyAsQoS(t *testing.T) {
	cfg := Config{ProbePeriod: 5, Horizon: 4000, MTBF: 500, MTTR: 80, Seed: 11}
	routerGD, connsGD := tiscaliSetup(t, "gd")
	gd, err := Run(routerGD, connsGD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	routerQoS, connsQoS := tiscaliSetup(t, "qos")
	qos, err := Run(routerQoS, connsQoS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same failure trace (same topology size and seed). The GD placement
	// covers at least as much, so it should detect and pinpoint at least
	// as well on aggregate.
	if gd.Covered < qos.Covered {
		t.Fatalf("GD covers %d < QoS %d", gd.Covered, qos.Covered)
	}
	if gd.DetectionRate() < qos.DetectionRate() {
		t.Fatalf("GD detection %v below QoS %v", gd.DetectionRate(), qos.DetectionRate())
	}
	if gd.PinpointRate() < qos.PinpointRate() {
		t.Fatalf("GD pinpoint %v below QoS %v", gd.PinpointRate(), qos.PinpointRate())
	}
}

func TestOutcomeZeroValues(t *testing.T) {
	var o Outcome
	if o.DetectionRate() != 0 || o.PinpointRate() != 0 {
		t.Fatal("empty outcome rates should be 0")
	}
	if o.MeanDetectionDelay() != -1 {
		t.Fatal("no detections should yield -1 delay")
	}
	var _ graph.NodeID = 0
}
