package oploop

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/failmodel"
	"repro/internal/graph"
	"repro/internal/monitord"
	"repro/internal/netsim"
	"repro/internal/routing"
)

// Config parameterizes one run.
type Config struct {
	// ProbePeriod is the virtual time between probe rounds (> 0).
	ProbePeriod float64
	// Horizon is the trace length.
	Horizon float64
	// MTBF and MTTR parameterize the failure model. Choose MTTR several
	// probe periods long or episodes end before they can be observed.
	MTBF, MTTR float64
	// Seed drives the failure schedule.
	Seed int64
	// PerHopDelay is the simulator's hop latency (default 0.01).
	PerHopDelay float64
}

// Episode is one ground-truth failure with the daemon's response.
type Episode struct {
	Node           graph.NodeID
	Start, End     float64
	Detected       bool
	DetectionDelay float64 // valid when Detected
	// Diagnosed reports whether, at some point during the episode, the
	// daemon's candidate list contained exactly-{Node} among candidates.
	Diagnosed bool
	// Pinpointed reports whether the daemon's diagnosis was uniquely
	// {Node} at some point during the episode.
	Pinpointed bool
}

// Outcome aggregates a run.
type Outcome struct {
	Episodes []Episode
	// Covered is the number of nodes on at least one monitored path;
	// failures of uncovered nodes are invisible by construction.
	Covered int
}

// DetectionRate returns the fraction of episodes detected.
func (o *Outcome) DetectionRate() float64 {
	if len(o.Episodes) == 0 {
		return 0
	}
	d := 0
	for _, e := range o.Episodes {
		if e.Detected {
			d++
		}
	}
	return float64(d) / float64(len(o.Episodes))
}

// PinpointRate returns the fraction of episodes whose failing node was
// uniquely identified.
func (o *Outcome) PinpointRate() float64 {
	if len(o.Episodes) == 0 {
		return 0
	}
	p := 0
	for _, e := range o.Episodes {
		if e.Pinpointed {
			p++
		}
	}
	return float64(p) / float64(len(o.Episodes))
}

// MeanDetectionDelay returns the average delay over detected episodes,
// or -1 when nothing was detected.
func (o *Outcome) MeanDetectionDelay() float64 {
	sum, n := 0.0, 0
	for _, e := range o.Episodes {
		if e.Detected {
			sum += e.DetectionDelay
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// Run executes the loop for one placement, given the monitored
// connections as (client, host) pairs. The failure schedule is capped at
// one concurrent failure so episodes are disjoint and attribution is
// unambiguous.
func Run(router *routing.Router, conns []netsim.Pair, cfg Config) (*Outcome, error) {
	if router == nil {
		return nil, fmt.Errorf("oploop: nil router")
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("oploop: no connections")
	}
	if cfg.ProbePeriod <= 0 {
		return nil, fmt.Errorf("oploop: ProbePeriod = %v", cfg.ProbePeriod)
	}
	if cfg.PerHopDelay == 0 {
		cfg.PerHopDelay = 0.01
	}

	schedule, err := failmodel.Generate(failmodel.Config{
		NumNodes:      router.NumNodes(),
		MTBF:          cfg.MTBF,
		MTTR:          cfg.MTTR,
		Horizon:       cfg.Horizon,
		MaxConcurrent: 1,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("oploop: %w", err)
	}

	sim, err := netsim.New(router, cfg.PerHopDelay)
	if err != nil {
		return nil, err
	}
	for _, e := range schedule {
		if e.Down {
			err = sim.FailAt(e.Time, e.Node)
		} else {
			err = sim.RecoverAt(e.Time, e.Node)
		}
		if err != nil {
			return nil, err
		}
	}
	for t := 0.0; t <= cfg.Horizon; t += cfg.ProbePeriod {
		for _, c := range conns {
			if err := sim.RequestAt(t, c.Client, c.Host); err != nil {
				return nil, err
			}
		}
	}
	outcomes, err := sim.Run()
	if err != nil {
		return nil, err
	}

	paths := make([]*bitset.Set, len(conns))
	index := map[netsim.Pair]int{}
	covered := bitset.New(router.NumNodes())
	for i, c := range conns {
		p, err := router.Path(c.Client, c.Host)
		if err != nil {
			return nil, err
		}
		paths[i] = p
		covered.UnionWith(p)
		index[c] = i
	}
	daemon, err := monitord.New(router.NumNodes(), 1, paths)
	if err != nil {
		return nil, err
	}

	sort.SliceStable(outcomes, func(i, j int) bool { return outcomes[i].End < outcomes[j].End })
	var timeline []monitord.Event
	for _, o := range outcomes {
		events, err := daemon.Report(o.End, index[netsim.Pair{Client: o.Client, Host: o.Host}], o.Success)
		if err != nil {
			return nil, err
		}
		timeline = append(timeline, events...)
	}

	out := &Outcome{Covered: covered.Count()}
	out.Episodes = scoreEpisodes(schedule, timeline, cfg.Horizon, cfg.ProbePeriod)
	return out, nil
}

// scoreEpisodes matches daemon events to ground-truth failure windows.
// With at most one concurrent failure, an episode owns every event in
// [start, end + one probe period) — the slack covers in-flight probes
// that report just after recovery.
func scoreEpisodes(schedule []failmodel.Event, timeline []monitord.Event, horizon, slack float64) []Episode {
	var episodes []Episode
	downAt := map[int]float64{}
	for _, e := range schedule {
		if e.Down {
			downAt[e.Node] = e.Time
			continue
		}
		episodes = append(episodes, Episode{Node: e.Node, Start: downAt[e.Node], End: e.Time})
		delete(downAt, e.Node)
	}
	for node, start := range downAt {
		episodes = append(episodes, Episode{Node: node, Start: start, End: horizon})
	}
	sort.Slice(episodes, func(i, j int) bool { return episodes[i].Start < episodes[j].Start })

	// Assign each event to exactly one episode: the one active at the
	// event time, or failing that the most recently ended one within the
	// slack window (covers probes that were in flight at recovery).
	owner := func(t float64) *Episode {
		var late *Episode
		for i := range episodes {
			ep := &episodes[i]
			if t >= ep.Start && t < ep.End {
				return ep
			}
			if t >= ep.End && t < ep.End+slack {
				if late == nil || ep.End > late.End {
					late = ep
				}
			}
		}
		return late
	}
	for _, ev := range timeline {
		if ev.Kind != monitord.EventOutageStarted && ev.Kind != monitord.EventDiagnosisChanged {
			continue
		}
		ep := owner(ev.Time)
		if ep == nil {
			continue
		}
		if !ep.Detected {
			ep.Detected = true
			ep.DetectionDelay = ev.Time - ep.Start
		}
		if ev.Diagnosis != nil {
			for _, cand := range ev.Diagnosis.Consistent {
				if len(cand) == 1 && cand[0] == ep.Node {
					ep.Diagnosed = true
					if ev.Diagnosis.Unique() {
						ep.Pinpointed = true
					}
				}
			}
		}
	}
	return episodes
}
