// Package oploop measures the operational value of a placement end to
// end: it generates a failure/recovery trace, replays it through the
// discrete-event simulator (netsim) with periodic probing, feeds the
// binary connection states to the online monitoring daemon (monitord),
// and scores the daemon's timeline against ground truth.
//
// Where the paper's objectives are static set-function values — coverage
// |C(P)| (Section II-B1), identifiability |S_k(P)| (Section II-B2), and
// distinguishability |D_k(P)| (Section II-B3) — this package converts
// them into the time-domain quantities an operator actually experiences:
//
//   - detection rate: the fraction of ground-truth outage episodes the
//     daemon notices at all, the operational face of coverage — a
//     failure at an uncovered node (one on no monitoring path of
//     Section II-A) is invisible by construction;
//   - detection delay: how long after a failure the first broken probe
//     lands, bounded by the probe period for covered nodes;
//   - diagnosis correctness: whether the rolling localization
//     (Section III-B Boolean tomography) pins the failed node, which is
//     what identifiability and distinguishability pay for.
//
// Run drives one Config through the whole pipeline and returns an
// Outcome of per-episode records plus aggregate rates. This is the
// latency-domain counterpart of failsim's accuracy-domain experiments
// (failure sets there are injected i.i.d., not embedded in a timeline),
// and the quantified version of the `placemon simulate` subcommand. The
// X7 experiment in EXPERIMENTS.md and BenchmarkOpLoop run it across
// probe periods to show the placement quality ordering (GD > QoS)
// survives the translation from set sizes to operational metrics.
package oploop
