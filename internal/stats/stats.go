package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than
// two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics (type-7, the spreadsheet default). It returns
// an error for empty input or out-of-range q.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0, 1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// FiveNumber is a box-plot summary.
type FiveNumber struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) (FiveNumber, error) {
	if len(xs) == 0 {
		return FiveNumber{}, fmt.Errorf("stats: summary of empty slice")
	}
	var f FiveNumber
	var err error
	f.N = len(xs)
	if f.Min, err = Quantile(xs, 0); err != nil {
		return f, err
	}
	if f.Q1, err = Quantile(xs, 0.25); err != nil {
		return f, err
	}
	if f.Median, err = Quantile(xs, 0.5); err != nil {
		return f, err
	}
	if f.Q3, err = Quantile(xs, 0.75); err != nil {
		return f, err
	}
	f.Max, err = Quantile(xs, 1)
	return f, err
}

// String renders the summary compactly.
func (f FiveNumber) String() string {
	return fmt.Sprintf("min=%g q1=%g med=%g q3=%g max=%g (n=%d)", f.Min, f.Q1, f.Median, f.Q3, f.Max, f.N)
}

// Distribution is a normalized discrete distribution over integer values
// 0..len(Frac)-1 (Fig. 8's fraction-of-nodes-per-degree statistic).
type Distribution struct {
	// Frac[d] is the fraction of samples with value d.
	Frac []float64
	// N is the number of samples.
	N int
}

// NewDistribution normalizes integer counts into a distribution. Trailing
// zero buckets are preserved so distributions over the same support align.
func NewDistribution(counts []int) (Distribution, error) {
	total := 0
	for i, c := range counts {
		if c < 0 {
			return Distribution{}, fmt.Errorf("stats: negative count at %d", i)
		}
		total += c
	}
	if total == 0 {
		return Distribution{}, fmt.Errorf("stats: empty distribution")
	}
	frac := make([]float64, len(counts))
	for i, c := range counts {
		frac[i] = float64(c) / float64(total)
	}
	return Distribution{Frac: frac, N: total}, nil
}

// Mean returns the expected value of the distribution.
func (d Distribution) Mean() float64 {
	m := 0.0
	for v, f := range d.Frac {
		m += float64(v) * f
	}
	return m
}

// Mode returns the most likely value (smallest on ties).
func (d Distribution) Mode() int {
	best, bestF := 0, -1.0
	for v, f := range d.Frac {
		if f > bestF {
			best, bestF = v, f
		}
	}
	return best
}

// Support returns the values with non-zero probability, ascending.
func (d Distribution) Support() []int {
	var out []int
	for v, f := range d.Frac {
		if f > 0 {
			out = append(out, v)
		}
	}
	return out
}
