// Package stats provides the small descriptive-statistics toolkit the
// experiment harness (internal/experiments) needs to reproduce the
// paper's Section VI evaluation figures:
//
//   - Mean, StdDev, and Quantile for aggregating per-seed series (the
//     random-placement baseline of Section VI-A averages several seeds
//     per α);
//   - FiveNumber/Summarize for the Fig. 4 box plots of candidate-set
//     sizes |H_s(α)| across α (Section III-A);
//   - Distribution for the Fig. 8 degree-of-uncertainty histogram
//     (Section VI-B).
//
// Quantiles use linear interpolation between order statistics and never
// mutate the input slice. The package is dependency-free and knows
// nothing about placements; it exists so the experiment code reads as
// methodology rather than arithmetic.
package stats
