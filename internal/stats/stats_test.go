package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single sample stddev should be 0")
	}
	// Population stddev of {2, 4}: mean 3, var 1, sd 1.
	if !almost(StdDev([]float64{2, 4}), 1) {
		t.Fatalf("stddev = %v", StdDev([]float64{2, 4}))
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty quantile should error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("q<0 should error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Fatal("q>1 should error")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Fatal("NaN q should error")
	}
}

func TestQuantileValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
		{0.75, 3.25},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Single element.
	got, err := Quantile([]float64{7}, 0.3)
	if err != nil || got != 7 {
		t.Fatalf("single-element quantile = %v, %v", got, err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Fatal("Quantile must not sort in place")
	}
}

func TestSummarize(t *testing.T) {
	f, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Min != 1 || f.Max != 4 || !almost(f.Median, 2.5) || f.N != 4 {
		t.Fatalf("summary = %+v", f)
	}
	if f.String() == "" {
		t.Fatal("String should render")
	}
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty summary should error")
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		va, err1 := Quantile(xs, a)
		vb, err2 := Quantile(xs, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistribution(t *testing.T) {
	d, err := NewDistribution([]int{2, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d.Frac[0], 0.5) || d.Frac[1] != 0 || !almost(d.Frac[2], 0.5) {
		t.Fatalf("Frac = %v", d.Frac)
	}
	if d.N != 4 {
		t.Fatalf("N = %d", d.N)
	}
	if !almost(d.Mean(), 1) {
		t.Fatalf("Mean = %v", d.Mean())
	}
	if d.Mode() != 0 {
		t.Fatalf("Mode = %d (smallest tie should win)", d.Mode())
	}
	if got := d.Support(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Support = %v", got)
	}
}

func TestDistributionErrors(t *testing.T) {
	if _, err := NewDistribution([]int{0, 0}); err == nil {
		t.Fatal("all-zero counts should error")
	}
	if _, err := NewDistribution([]int{-1, 2}); err == nil {
		t.Fatal("negative count should error")
	}
	if _, err := NewDistribution(nil); err == nil {
		t.Fatal("nil counts should error")
	}
}
