package placemon_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	placemon "repro"
	"repro/placemonclient"
)

// lineScenarioSpec is a self-contained inline scenario: a 5-node line
// 0-1-2-3-4 with one service at host 2 serving clients 0 and 4, i.e. two
// monitored connections.
func lineScenarioSpec() placemon.ScenarioSpec {
	return placemon.ScenarioSpec{
		Nodes: 5,
		Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}},
		Placement: placemon.PlacementFile{
			Alpha:    1,
			Services: []placemon.ServiceRecord{{Name: "svc", Clients: []int{0, 4}}},
			Hosts:    []int{2},
		},
	}
}

func scenarioGET(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestScenarioServerEndToEnd: a registry-only facade server hosts
// dynamically added scenarios with working ingest and diagnosis, and the
// admin errors are typed.
func TestScenarioServerEndToEnd(t *testing.T) {
	srv, err := placemon.NewScenarioServer(placemon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := srv.AddScenario("edge-net", lineScenarioSpec()); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddScenario("edge-net", lineScenarioSpec()); !errors.Is(err, placemon.ErrScenarioExists) {
		t.Fatalf("duplicate add error = %v, want ErrScenarioExists", err)
	}
	// A built-in-topology scenario rides the same API.
	topoSpec := placemon.ScenarioSpec{
		Topology: "Abovenet",
		Placement: placemon.PlacementFile{
			Alpha:    1,
			Services: []placemon.ServiceRecord{{Clients: []int{1, 2}}},
			Hosts:    []int{0},
		},
	}
	if err := srv.AddScenario("abovenet", topoSpec); err != nil {
		t.Fatal(err)
	}
	if got, want := srv.Scenarios(), []string{"abovenet", "edge-net"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Scenarios() = %v, want %v", got, want)
	}

	// Ingest an outage into edge-net and diagnose it over HTTP.
	resp, err := http.Post(ts.URL+"/v1/scenarios/edge-net/observations", "application/json",
		strings.NewReader(`{"time": 1, "reports": [{"connection": 0, "up": false}, {"connection": 1, "up": true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario ingest status = %d", resp.StatusCode)
	}
	if code, body := scenarioGET(t, ts.URL+"/v1/scenarios/edge-net/diagnosis"); code != http.StatusOK || !strings.Contains(body, `"in_outage":true`) {
		t.Fatalf("edge-net diagnosis = %d %s", code, body)
	}
	// The sibling scenario is untouched.
	if _, body := scenarioGET(t, ts.URL+"/v1/scenarios/abovenet/diagnosis"); !strings.Contains(body, `"in_outage":false`) {
		t.Fatalf("abovenet diagnosis leaked state: %s", body)
	}
	// No default scenario: legacy routes answer 404.
	if code, _ := scenarioGET(t, ts.URL+"/v1/diagnosis"); code != http.StatusNotFound {
		t.Fatalf("legacy route on registry-only server = %d, want 404", code)
	}

	if err := srv.RemoveScenario(context.Background(), "abovenet"); err != nil {
		t.Fatal(err)
	}
	if err := srv.RemoveScenario(context.Background(), "abovenet"); !errors.Is(err, placemon.ErrScenarioNotFound) {
		t.Fatalf("double remove error = %v, want ErrScenarioNotFound", err)
	}
	if got, want := srv.Scenarios(), []string{"edge-net"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Scenarios() after remove = %v, want %v", got, want)
	}
}

// TestScenarioLimitTyped: the MaxScenarios cap surfaces as
// ErrScenarioLimit through the facade.
func TestScenarioLimitTyped(t *testing.T) {
	srv, err := placemon.NewScenarioServer(placemon.ServerConfig{MaxScenarios: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.AddScenario("one", lineScenarioSpec()); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddScenario("two", lineScenarioSpec()); !errors.Is(err, placemon.ErrScenarioLimit) {
		t.Fatalf("over-cap add error = %v, want ErrScenarioLimit", err)
	}
}

// TestScenarioDirSurvivesRestart: scenarios added to a file-backed server
// reload on the next boot, and removed ones stay gone.
func TestScenarioDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := placemon.ServerConfig{ScenarioDir: dir}

	srv1, err := placemon.NewScenarioServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.AddScenario("survivor", lineScenarioSpec()); err != nil {
		t.Fatal(err)
	}
	if err := srv1.AddScenario("casualty", lineScenarioSpec()); err != nil {
		t.Fatal(err)
	}
	if err := srv1.RemoveScenario(context.Background(), "casualty"); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	srv2, err := placemon.NewScenarioServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got, want := srv2.Scenarios(), []string{"survivor"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("reloaded scenarios = %v, want %v", got, want)
	}
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	if code, body := scenarioGET(t, ts.URL+"/v1/scenarios/survivor/diagnosis"); code != http.StatusOK {
		t.Fatalf("reloaded scenario not serving: %d %s", code, body)
	}
}

// TestParseScenarioSpecValidation: malformed documents fail parse with a
// useful error instead of failing deep inside an engine.
func TestParseScenarioSpecValidation(t *testing.T) {
	for _, tc := range []struct {
		name, raw string
	}{
		{"not json", `{`},
		{"unknown field", `{"bogus": 1, "placement": {"alpha": 0, "services": [], "hosts": []}}`},
		{"negative nodes", `{"nodes": -3, "placement": {"alpha": 0, "services": [], "hosts": []}}`},
		{"negative k", `{"nodes": 2, "k": -1, "placement": {"alpha": 0, "services": [], "hosts": []}}`},
		{"host service mismatch", `{"nodes": 2, "edges": [[0,1]], "placement": {"alpha": 0, "services": [{"clients": [0]}], "hosts": []}}`},
		{"clientless service", `{"nodes": 2, "edges": [[0,1]], "placement": {"alpha": 0, "services": [{"clients": []}], "hosts": [1]}}`},
		{"alpha out of range", `{"nodes": 2, "edges": [[0,1]], "placement": {"alpha": 7, "services": [{"clients": [0]}], "hosts": [1]}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := placemon.ParseScenarioSpec([]byte(tc.raw)); err == nil {
				t.Fatalf("spec %s parsed without error", tc.raw)
			}
		})
	}

	// The happy path round-trips.
	sp, err := placemon.ParseScenarioSpec([]byte(
		`{"nodes": 5, "edges": [[0,1],[1,2],[2,3],[3,4]], "placement": {"alpha": 1, "services": [{"clients": [0,4]}], "hosts": [2]}}`))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sp.Network()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != 5 {
		t.Fatalf("spec network has %d nodes, want 5", nw.NumNodes())
	}
}

// TestScenarioSpecNetworkFallback: a spec without Topology or inline
// edges falls back to the placement document's topology name, and a spec
// naming nothing errors.
func TestScenarioSpecNetworkFallback(t *testing.T) {
	sp := placemon.ScenarioSpec{
		Placement: placemon.PlacementFile{Topology: "Abovenet", Alpha: 1,
			Services: []placemon.ServiceRecord{{Clients: []int{1}}}, Hosts: []int{0}},
	}
	nw, err := sp.Network()
	if err != nil {
		t.Fatal(err)
	}
	want, err := placemon.BuildTopology("Abovenet")
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != want.NumNodes() {
		t.Fatalf("fallback network has %d nodes, want %d", nw.NumNodes(), want.NumNodes())
	}
	if _, err := (placemon.ScenarioSpec{}).Network(); err == nil {
		t.Fatal("nameless spec built a network")
	}
}

// TestReplaceScenarioNetworkEndToEnd drives the full warm-start
// re-placement stack: facade method and placemonclient against a live
// server, replacing an inline network and then a built-in topology while
// the scenario keeps serving under its ID.
func TestReplaceScenarioNetworkEndToEnd(t *testing.T) {
	srv, err := placemon.NewScenarioServer(placemon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.AddScenario("edge-net", lineScenarioSpec()); err != nil {
		t.Fatal(err)
	}

	// Grow the line by two nodes; the service is re-placed automatically.
	change := placemon.NetworkChange{
		Nodes: 7,
		Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}},
	}
	if err := srv.ReplaceScenarioNetwork("edge-net", change); err != nil {
		t.Fatal(err)
	}
	code, body := scenarioGET(t, ts.URL+"/v1/scenarios/edge-net")
	if code != http.StatusOK || !strings.Contains(body, `"connections":2`) {
		t.Fatalf("post-replace info: %d %s", code, body)
	}
	resp, err := http.Post(ts.URL+"/v1/scenarios/edge-net/observations", "application/json",
		strings.NewReader(`{"time":1,"reports":[{"connection":0,"up":false}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-replace ingest: %d", resp.StatusCode)
	}

	// The same replacement rides the typed client, this time onto a
	// built-in topology.
	c, err := placemonclient.New(placemonclient.Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Scenario("edge-net").ReplaceNetwork(context.Background(),
		placemonclient.NetworkChange{Topology: "Abovenet"})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "edge-net" || info.Connections != 2 {
		t.Fatalf("client replace answered %+v", info)
	}

	// Typed errors: unknown scenario and a change naming no network.
	if err := srv.ReplaceScenarioNetwork("ghost", change); !errors.Is(err, placemon.ErrScenarioNotFound) {
		t.Fatalf("unknown scenario error = %v, want ErrScenarioNotFound", err)
	}
	if err := srv.ReplaceScenarioNetwork("edge-net", placemon.NetworkChange{}); err == nil {
		t.Fatal("empty network change should error")
	}
}
