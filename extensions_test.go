package placemon

import (
	"math"
	"reflect"
	"testing"
)

func TestAlgorithmGreedyLS(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(3)
	plain, err := nw.Place(services, PlaceConfig{Alpha: 0.5, Algorithm: AlgorithmGreedy})
	if err != nil {
		t.Fatal(err)
	}
	polished, err := nw.Place(services, PlaceConfig{Alpha: 0.5, Algorithm: AlgorithmGreedyLS})
	if err != nil {
		t.Fatal(err)
	}
	if polished.Objective < plain.Objective {
		t.Fatalf("LS objective %v below greedy %v", polished.Objective, plain.Objective)
	}
	if polished.Evaluations <= plain.Evaluations {
		t.Fatal("LS should perform additional evaluations")
	}
}

func TestMaxIdentifiabilityFacade(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(4)
	hosts := []int{1, 2, 3, 4} // one service per host → everything identifiable

	for v := 0; v < nw.NumNodes(); v++ {
		k, err := nw.MaxIdentifiability(services, hosts, 0.5, v)
		if err != nil {
			t.Fatal(err)
		}
		if k < 1 {
			t.Fatalf("node %d: max identifiability %d, want ≥ 1", v, k)
		}
	}
	if _, err := nw.MaxIdentifiability(services, hosts, 0.5, 99); err == nil {
		t.Fatal("out-of-range node should error")
	}

	netK, err := nw.NetworkMaxIdentifiability(services, hosts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if netK < 1 {
		t.Fatalf("network max identifiability = %d, want ≥ 1", netK)
	}

	// The QoS placement identifies only r → network measure is 0.
	qosHosts := []int{0, 0, 0, 0}
	netK, err = nw.NetworkMaxIdentifiability(services, qosHosts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if netK != 0 {
		t.Fatalf("QoS network max identifiability = %d, want 0", netK)
	}
}

func TestRankFailuresFacade(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(4)
	hosts := []int{1, 2, 3, 4}

	obs, err := nw.Observe(services, hosts, 0.5, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	priors := make([]float64, nw.NumNodes())
	for i := range priors {
		priors[i] = 0.05
	}
	ranked, err := nw.RankFailures(obs, priors, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("expected candidates")
	}
	if !reflect.DeepEqual(ranked[0].Nodes, []int{2}) {
		t.Fatalf("top candidate = %v, want [2]", ranked[0].Nodes)
	}
	total := 0.0
	for _, r := range ranked {
		total += r.Posterior
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("posteriors sum to %v", total)
	}

	// Error paths.
	if _, err := nw.RankFailures(&Observation{}, priors, 1); err == nil {
		t.Fatal("foreign observation should error")
	}
	if _, err := nw.RankFailures(obs, []float64{2}, 1); err == nil {
		t.Fatal("bad prior should error")
	}
}

func TestMostLikelyExplanationFacade(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(4)
	hosts := []int{1, 2, 3, 4}
	obs, err := nw.Observe(services, hosts, 0.5, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	priors := make([]float64, nw.NumNodes())
	for i := range priors {
		priors[i] = 0.05
	}
	expl, err := nw.MostLikelyExplanation(obs, priors)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(expl, []int{0}) {
		t.Fatalf("explanation = %v, want [0]", expl)
	}
	if _, err := nw.MostLikelyExplanation(&Observation{}, priors); err == nil {
		t.Fatal("foreign observation should error")
	}
	if _, err := nw.MostLikelyExplanation(obs, []float64{-1}); err == nil {
		t.Fatal("bad prior should error")
	}
}

func TestAlgorithmBranchBound(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(3)
	bb, err := nw.Place(services, PlaceConfig{Alpha: 0.5, Algorithm: AlgorithmBranchBound})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := nw.Place(services, PlaceConfig{Alpha: 0.5, Algorithm: AlgorithmBruteForce})
	if err != nil {
		t.Fatal(err)
	}
	if bb.Objective != bf.Objective {
		t.Fatalf("branch-and-bound %v != brute force %v", bb.Objective, bf.Objective)
	}
	// Identifiability objective must be rejected (not submodular).
	if _, err := nw.Place(services, PlaceConfig{
		Alpha: 0.5, Algorithm: AlgorithmBranchBound, Objective: ObjectiveIdentifiability,
	}); err == nil {
		t.Fatal("identifiability + branch-and-bound should error")
	}
}

func TestWithLinkNodesEndToEnd(t *testing.T) {
	nw := fig1Network(t)
	linked, linkNodes, err := nw.WithLinkNodes()
	if err != nil {
		t.Fatal(err)
	}
	if linked.NumNodes() != nw.NumNodes()+nw.NumLinks() {
		t.Fatalf("transformed nodes = %d", linked.NumNodes())
	}
	if len(linkNodes) != nw.NumLinks() {
		t.Fatalf("link nodes = %d", len(linkNodes))
	}

	// Place on the transformed network and localize a LINK failure.
	services := fig1Services(4)
	res, err := linked.Place(services, placeCfgHalf())
	if err != nil {
		t.Fatal(err)
	}
	victim := linkNodes[0] // the r—a link
	obs, err := linked.Observe(services, res.Hosts, 0.5, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := linked.Localize(obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cand := range diag.Candidates {
		for _, v := range cand {
			if v == victim {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("link failure not among candidates: %v", diag.Candidates)
	}
}

// placeCfgHalf is the α=0.5 default-objective config used by link tests.
func placeCfgHalf() PlaceConfig { return PlaceConfig{Alpha: 0.5} }
