package placemon

import (
	"encoding/json"
	"fmt"
	"io"
)

// PlacementFile is the JSON document Save/LoadPlacement exchange: enough
// context to re-evaluate, observe, and localize against the placement
// later (or on another machine).
type PlacementFile struct {
	// Topology names a built-in topology; empty for custom networks
	// (whose graphs travel separately via Network export).
	Topology string `json:"topology,omitempty"`
	// Alpha is the QoS slack the placement was computed under.
	Alpha float64 `json:"alpha"`
	// Services are the service definitions.
	Services []ServiceRecord `json:"services"`
	// Hosts[s] is the host of service s (-1 = unplaced).
	Hosts []int `json:"hosts"`
}

// ServiceRecord is the serialized form of Service.
type ServiceRecord struct {
	Name    string `json:"name,omitempty"`
	Clients []int  `json:"clients"`
}

// SavePlacement writes a placement document as indented JSON.
func SavePlacement(w io.Writer, doc PlacementFile) error {
	if len(doc.Hosts) != len(doc.Services) {
		return fmt.Errorf("placemon: %d hosts for %d services", len(doc.Hosts), len(doc.Services))
	}
	for i, s := range doc.Services {
		if len(s.Clients) == 0 {
			return fmt.Errorf("placemon: service %d has no clients", i)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("placemon: encode placement: %w", err)
	}
	return nil
}

// LoadPlacement reads a placement document written by SavePlacement.
func LoadPlacement(r io.Reader) (PlacementFile, error) {
	var doc PlacementFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return doc, fmt.Errorf("placemon: decode placement: %w", err)
	}
	if len(doc.Hosts) != len(doc.Services) {
		return doc, fmt.Errorf("placemon: %d hosts for %d services", len(doc.Hosts), len(doc.Services))
	}
	for i, s := range doc.Services {
		if len(s.Clients) == 0 {
			return doc, fmt.Errorf("placemon: service %d has no clients", i)
		}
	}
	return doc, nil
}

// ToServices converts the records back to Service values.
func (f PlacementFile) ToServices() []Service {
	out := make([]Service, len(f.Services))
	for i, s := range f.Services {
		out[i] = Service{Name: s.Name, Clients: append([]int(nil), s.Clients...)}
	}
	return out
}

// NewPlacementFile assembles a document from a placement run.
func NewPlacementFile(topologyName string, alpha float64, services []Service, hosts []int) PlacementFile {
	doc := PlacementFile{
		Topology: topologyName,
		Alpha:    alpha,
		Hosts:    append([]int(nil), hosts...),
	}
	for _, s := range services {
		doc.Services = append(doc.Services, ServiceRecord{
			Name:    s.Name,
			Clients: append([]int(nil), s.Clients...),
		})
	}
	return doc
}
