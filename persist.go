package placemon

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// PlacementFile is the JSON document Save/LoadPlacement exchange: enough
// context to re-evaluate, observe, and localize against the placement
// later (or on another machine).
type PlacementFile struct {
	// Topology names a built-in topology; empty for custom networks
	// (whose graphs travel separately via Network export).
	Topology string `json:"topology,omitempty"`
	// Alpha is the QoS slack the placement was computed under.
	Alpha float64 `json:"alpha"`
	// Services are the service definitions.
	Services []ServiceRecord `json:"services"`
	// Hosts[s] is the host of service s (-1 = unplaced).
	Hosts []int `json:"hosts"`
}

// ServiceRecord is the serialized form of Service.
type ServiceRecord struct {
	Name    string `json:"name,omitempty"`
	Clients []int  `json:"clients"`
}

// SavePlacement writes a placement document as indented JSON.
func SavePlacement(w io.Writer, doc PlacementFile) error {
	if len(doc.Hosts) != len(doc.Services) {
		return fmt.Errorf("placemon: %d hosts for %d services", len(doc.Hosts), len(doc.Services))
	}
	for i, s := range doc.Services {
		if len(s.Clients) == 0 {
			return fmt.Errorf("placemon: service %d has no clients", i)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("placemon: encode placement: %w", err)
	}
	return nil
}

// LoadPlacement reads a placement document written by SavePlacement.
// Beyond decoding, it rejects structurally invalid documents — a slack
// outside [0, 1] (or NaN), host IDs below -1, negative client IDs, and
// host/service count mismatches — so a hand-edited or corrupted file
// fails here with a clear message instead of deep inside an engine.
// Bounds that depend on a concrete network (node-ID ranges) are checked
// separately by PlacementFile.Validate.
func LoadPlacement(r io.Reader) (PlacementFile, error) {
	var doc PlacementFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return doc, fmt.Errorf("placemon: decode placement: %w", err)
	}
	if len(doc.Hosts) != len(doc.Services) {
		return doc, fmt.Errorf("placemon: %d hosts for %d services", len(doc.Hosts), len(doc.Services))
	}
	if math.IsNaN(doc.Alpha) || doc.Alpha < 0 || doc.Alpha > 1 {
		return doc, fmt.Errorf("placemon: alpha %v outside [0, 1]", doc.Alpha)
	}
	for s, h := range doc.Hosts {
		if h < -1 {
			return doc, fmt.Errorf("placemon: service %d has invalid host %d (want ≥ -1)", s, h)
		}
	}
	for i, s := range doc.Services {
		if len(s.Clients) == 0 {
			return doc, fmt.Errorf("placemon: service %d has no clients", i)
		}
		for j, c := range s.Clients {
			if c < 0 {
				return doc, fmt.Errorf("placemon: service %d client %d is negative (%d)", i, j, c)
			}
		}
	}
	return doc, nil
}

// Validate checks the document against a concrete network: every host
// and client ID must name a node of nw (hosts may also be -1, unplaced).
// LoadPlacement already enforces the network-independent invariants;
// callers that apply a document to a network (NewServer, `placemon
// localize -placement`) run this too, so an ID from a different topology
// is caught before any paths are built.
func (f PlacementFile) Validate(nw *Network) error {
	if nw == nil {
		return fmt.Errorf("placemon: Validate: nil network")
	}
	n := nw.NumNodes()
	for s, h := range f.Hosts {
		if h != -1 && (h < 0 || h >= n) {
			return fmt.Errorf("placemon: service %d host %d outside the network's %d nodes", s, h, n)
		}
	}
	for i, svc := range f.Services {
		for _, c := range svc.Clients {
			if c < 0 || c >= n {
				return fmt.Errorf("placemon: service %d client %d outside the network's %d nodes", i, c, n)
			}
		}
	}
	return nil
}

// ToServices converts the records back to Service values.
func (f PlacementFile) ToServices() []Service {
	out := make([]Service, len(f.Services))
	for i, s := range f.Services {
		out[i] = Service{Name: s.Name, Clients: append([]int(nil), s.Clients...)}
	}
	return out
}

// NewPlacementFile assembles a document from a placement run.
func NewPlacementFile(topologyName string, alpha float64, services []Service, hosts []int) PlacementFile {
	doc := PlacementFile{
		Topology: topologyName,
		Alpha:    alpha,
		Hosts:    append([]int(nil), hosts...),
	}
	for _, s := range services {
		doc.Services = append(doc.Services, ServiceRecord{
			Name:    s.Name,
			Clients: append([]int(nil), s.Clients...),
		})
	}
	return doc
}
