package placemon_test

import (
	"fmt"

	placemon "repro"
)

// fig1 builds the paper's Fig. 1 network.
func fig1() *placemon.Network {
	nw, err := placemon.NewNetwork(9, []placemon.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
		{U: 1, V: 5}, {U: 2, V: 6}, {U: 3, V: 7}, {U: 4, V: 8},
	})
	if err != nil {
		panic(err)
	}
	return nw
}

func ExampleNetwork_Place() {
	nw := fig1()
	services := []placemon.Service{
		{Name: "web", Clients: []int{5, 6, 7, 8}},
		{Name: "dns", Clients: []int{5, 6, 7, 8}},
		{Name: "cdn", Clients: []int{5, 6, 7, 8}},
		{Name: "auth", Clients: []int{5, 6, 7, 8}},
	}
	res, err := nw.Place(services, placemon.PlaceConfig{Alpha: 0.5})
	if err != nil {
		panic(err)
	}
	fmt.Println("identifiable nodes:", res.Identifiable)
	// Output:
	// identifiable nodes: 9
}

func ExampleNetwork_Localize() {
	nw := fig1()
	services := []placemon.Service{
		{Name: "web", Clients: []int{5, 6, 7, 8}},
		{Name: "dns", Clients: []int{5, 6, 7, 8}},
		{Name: "cdn", Clients: []int{5, 6, 7, 8}},
		{Name: "auth", Clients: []int{5, 6, 7, 8}},
	}
	hosts := []int{1, 2, 3, 4} // one service per aggregation node

	obs, err := nw.Observe(services, hosts, 0.5, []int{2}) // node b fails
	if err != nil {
		panic(err)
	}
	diag, err := nw.Localize(obs, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("candidates:", diag.Candidates)
	fmt.Println("unique:", diag.Unique())
	// Output:
	// candidates: [[2]]
	// unique: true
}

func ExampleNetwork_CandidateHosts() {
	nw := fig1()
	hosts, err := nw.CandidateHosts([]int{5, 6, 7, 8}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("strict QoS:", hosts)
	hosts, err = nw.CandidateHosts([]int{5, 6, 7, 8}, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Println("relaxed QoS:", hosts)
	// Output:
	// strict QoS: [0]
	// relaxed QoS: [0 1 2 3 4]
}

func ExampleBuildTopology() {
	nw, err := placemon.BuildTopology("Tiscali")
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes:", nw.NumNodes(), "links:", nw.NumLinks())
	// Output:
	// nodes: 51 links: 129
}
