package placemon

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"repro/internal/bitset"
	"repro/internal/placement"
	"repro/internal/server"
	"repro/internal/trace"
)

// This file is the serving side of the facade: it turns a Network plus a
// deployed placement (the PlacementFile document persist.go defines) into
// a runnable monitoring service — the placemond daemon — without exposing
// any internal package in the API.

// ServerConfig parameterizes NewServer. The zero value is a sensible
// production default.
type ServerConfig struct {
	// K is the failure budget of the rolling diagnosis (default 1).
	K int
	// Workers sizes the placement worker pool (default: half the CPUs).
	Workers int
	// QueueDepth bounds the placement job backlog; a full queue answers
	// 429 (default 8).
	QueueDepth int
	// RequestTimeout bounds each API request (default 15s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// DedupWindow sizes the idempotent-ingest window: how many recent
	// batch IDs are remembered so retried observation batches replay
	// their original response instead of re-applying (default 1024;
	// ≤ -1 disables).
	DedupWindow int
	// DiagnosisTimeout bounds the diagnosis recompute in
	// GET /v1/diagnosis; past it the last good diagnosis is served with
	// a staleness marker (default 2s; ≤ -1 disables the deadline).
	DiagnosisTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logger receives structured request and error records; nil discards
	// them. Every record carries the request's trace ID.
	Logger *slog.Logger
	// SlowRequest is the latency at or above which a request additionally
	// logs a warning (default 1s; ≤ -1 disables).
	SlowRequest time.Duration
	// TraceBuffer sizes the /debug/traces ring of recent request traces
	// (default 64; ≤ -1 disables the ring and the endpoint).
	TraceBuffer int
}

// Server is the placemond HTTP monitoring service over one deployed
// placement: it ingests end-to-end connection observations, serves the
// rolling diagnosis, and runs placement jobs on a bounded worker pool.
// Create with NewServer; see cmd/placemond for the standalone binary.
type Server struct {
	inner *server.Server
	conns []Connection
}

// NewServer builds the service for the placement described by doc, whose
// services and hosts must be valid for nw at doc.Alpha. The monitored
// connections are the routed (client, host) pairs of every placed
// service, in the same order Network.Observe reports them; connection
// indices in the ingest API refer to that order (see Server.Connections).
func NewServer(nw *Network, doc PlacementFile, cfg ServerConfig) (*Server, error) {
	services := doc.ToServices()
	if len(doc.Hosts) != len(services) {
		return nil, fmt.Errorf("placemon: %d hosts for %d services", len(doc.Hosts), len(services))
	}
	if err := doc.Validate(nw); err != nil {
		return nil, err
	}
	inst, _, err := nw.prepare(services, PlaceConfig{Alpha: doc.Alpha})
	if err != nil {
		return nil, err
	}

	var paths []*bitset.Set
	var conns []server.Connection
	var public []Connection
	for s, h := range doc.Hosts {
		if h == placement.Unplaced {
			continue
		}
		ps, err := inst.ServicePaths(s, h)
		if err != nil {
			return nil, fmt.Errorf("placemon: %w", err)
		}
		for i, p := range ps {
			paths = append(paths, p)
			conns = append(conns, server.Connection{Service: s, Client: services[s].Clients[i], Host: h})
			public = append(public, Connection{Service: s, Client: services[s].Clients[i], Host: h})
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("placemon: placement has no monitored connections")
	}

	inner, err := server.New(server.Config{
		NumNodes:         nw.NumNodes(),
		K:                cfg.K,
		Paths:            paths,
		Connections:      conns,
		Place:            nw.placeFunc(),
		Workers:          cfg.Workers,
		QueueDepth:       cfg.QueueDepth,
		RequestTimeout:   cfg.RequestTimeout,
		DrainTimeout:     cfg.DrainTimeout,
		DedupWindow:      cfg.DedupWindow,
		DiagnosisTimeout: cfg.DiagnosisTimeout,
		EnablePprof:      cfg.EnablePprof,
		Logger:           cfg.Logger,
		SlowRequest:      cfg.SlowRequest,
		TraceBuffer:      cfg.TraceBuffer,
	})
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return &Server{inner: inner, conns: public}, nil
}

// placeFunc adapts Network.Place to the serving layer's job signature.
// Network methods are safe for concurrent use, so the closure is too.
// The request's trace span (carried by ctx into the worker pool) receives
// one stage per engine round, which the serving layer also folds into the
// round-duration histogram.
func (nw *Network) placeFunc() server.PlaceFunc {
	return func(ctx context.Context, req server.PlacementRequest) (*server.PlacementResult, error) {
		services := make([]Service, len(req.Services))
		for i, s := range req.Services {
			services[i] = Service{Name: s.Name, Clients: s.Clients}
		}
		var progress func(RoundProgress)
		if sp := trace.FromContext(ctx); sp != nil {
			progress = func(r RoundProgress) {
				sp.AddStage(fmt.Sprintf("placement round %d", r.Round), r.Duration,
					fmt.Sprintf("service=%d host=%d gain=%g candidates=%d evaluations=%d",
						r.Service, r.Host, r.Gain, r.Candidates, r.Evaluations))
			}
		}
		res, err := nw.Place(services, PlaceConfig{
			Alpha:     req.Alpha,
			Objective: ObjectiveKind(req.Objective),
			Algorithm: Algorithm(req.Algorithm),
			K:         req.K,
			Seed:      req.Seed,
			Progress:  progress,
		})
		if err != nil {
			return nil, err
		}
		return &server.PlacementResult{
			Hosts:                 res.Hosts,
			Objective:             res.Objective,
			Coverage:              res.Coverage,
			Identifiable:          res.Identifiable,
			Distinguishable:       res.Distinguishable,
			WorstRelativeDistance: res.WorstRelativeDistance,
			Evaluations:           res.Evaluations,
		}, nil
	}
}

// Connections returns the monitored (client, host) pairs in ingest-index
// order: POST /v1/observations report entries name connections by their
// position in this slice.
func (s *Server) Connections() []Connection {
	return append([]Connection(nil), s.conns...)
}

// Handler returns the service's HTTP handler — the full API with
// middleware — for mounting under a custom server or httptest.
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// Serve accepts connections on ln until ctx is canceled, then drains
// gracefully: in-flight requests complete (bounded by DrainTimeout) and
// queued placement jobs finish. Returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return s.inner.Serve(ctx, ln)
}

// Close releases the worker pool without serving; required if the Server
// is used via Handler alone. Idempotent, and implied by Serve returning.
func (s *Server) Close() { s.inner.Close() }

// WriteMetrics renders the server's metrics in the Prometheus text
// exposition format (the same payload GET /metrics serves).
func (s *Server) WriteMetrics(w io.Writer) error {
	return s.inner.Registry().WriteText(w)
}
