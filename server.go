package placemon

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"repro/internal/bitset"
	"repro/internal/placement"
	"repro/internal/server"
	"repro/internal/trace"
)

// This file is the serving side of the facade: it turns a Network plus a
// deployed placement (the PlacementFile document persist.go defines) into
// a runnable monitoring service — the placemond daemon — without exposing
// any internal package in the API.

// ServerConfig parameterizes NewServer. The zero value is a sensible
// production default.
type ServerConfig struct {
	// K is the failure budget of the rolling diagnosis (default 1).
	K int
	// Workers sizes the placement worker pool (default: half the CPUs).
	Workers int
	// QueueDepth bounds the placement job backlog; a full queue answers
	// 429 (default 8).
	QueueDepth int
	// RequestTimeout bounds each API request (default 15s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// DedupWindow sizes the idempotent-ingest window: how many recent
	// batch IDs are remembered so retried observation batches replay
	// their original response instead of re-applying (default 1024;
	// ≤ -1 disables).
	DedupWindow int
	// DiagnosisTimeout bounds the diagnosis recompute in
	// GET /v1/diagnosis; past it the last good diagnosis is served with
	// a staleness marker (default 2s; ≤ -1 disables the deadline).
	DiagnosisTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logger receives structured request and error records; nil discards
	// them. Every record carries the request's trace ID.
	Logger *slog.Logger
	// SlowRequest is the latency at or above which a request additionally
	// logs a warning (default 1s; ≤ -1 disables).
	SlowRequest time.Duration
	// TraceBuffer sizes the /debug/traces ring of recent request traces
	// (default 64; ≤ -1 disables the ring and the endpoint). Each scenario
	// additionally gets its own ring of the same size.
	TraceBuffer int

	// ScenarioDir, when non-empty, persists scenario documents as files
	// under this directory (created if missing): every created scenario is
	// snapshotted on write and reloaded at the next boot. Empty keeps
	// scenarios in memory for the process lifetime only. Mutually
	// exclusive with WALDir, which subsumes it.
	ScenarioDir string
	// WALDir, when non-empty, persists the daemon's full mutable state —
	// scenarios, monitoring state, dedup windows, the diagnosis audit
	// ledger — through a write-ahead log under this directory: every
	// mutation is durable before its HTTP response is acknowledged, and
	// boot replays snapshot + log tail. A WAL write failure flips the
	// daemon read-only (503 + Placemond-Read-Only) instead of crashing
	// it. Mutually exclusive with ScenarioDir.
	WALDir string
	// WALSync is the append durability policy: "always" (default; fsync
	// per acknowledged mutation), "group" (group commit: concurrent
	// writers share one fsync), or "none" (fsync only on rotation and
	// shutdown).
	WALSync string
	// WALSegmentBytes overrides the log's segment rotation threshold
	// (default 4 MiB, minimum 4 KiB).
	WALSegmentBytes int64
	// MaxScenarios caps concurrently hosted scenarios (default 64).
	MaxScenarios int
	// TenantSeriesCap caps tenant-labeled metric cardinality: the first
	// cap scenarios get their own series, later ones share the
	// tenant="other" bucket (default 32; ≤ -1 removes the cap).
	TenantSeriesCap int
	// MaxJobsPerScenario caps one scenario's queued-plus-running placement
	// jobs; the excess is rejected with 429 so a noisy tenant cannot
	// monopolize the shared worker pool (default: the whole pool;
	// < 0 removes the quota).
	MaxJobsPerScenario int

	// NodeID, when non-empty, runs the daemon in cluster mode as the named
	// member of the static membership Peers describes. Scenario ownership
	// is decided by a consistent-hash ring over the member IDs; requests
	// for scenarios this node does not own answer 307 to the owner (or are
	// proxied, see ClusterProxy). Must be set together with Peers.
	NodeID string
	// Peers is the shared membership specification, comma-separated
	// "id=url" entries (e.g. "a=http://h1:8080,b=http://h2:8080"). Every
	// node must be started with the same list, which must include its own
	// NodeID. Must be set together with NodeID.
	Peers string
	// ClusterProxy makes non-owner nodes proxy scenario requests to the
	// owner peer-to-peer instead of answering 307, for clients that cannot
	// follow redirects. Default false (redirect).
	ClusterProxy bool
	// ForceAdopt lets a booting cluster node keep serving persisted
	// scenarios whose ring owner is another node (it logs a warning per
	// scenario instead of refusing to start). An escape hatch for membership
	// changes; the owned-elsewhere scenarios should then be migrated off.
	ForceAdopt bool
}

// Server is the placemond HTTP monitoring service. Built with NewServer
// it hosts one boot-time scenario (the "default" tenant the legacy
// single-scenario routes address) and, like a NewScenarioServer-built
// one, any number of additional named scenarios, each with fully
// isolated monitoring state. See cmd/placemond for the standalone
// binary.
type Server struct {
	inner *server.Server
	conns []Connection
}

// buildMonitoring turns a placement document into the serving layer's
// path and connection lists: the routed (client, host) pair of every
// placed service, in the same order Network.Observe reports them. Shared
// by NewServer (the default tenant) and buildScenario (every other
// tenant), so a scenario built from a document monitors exactly what the
// single-scenario daemon would.
func buildMonitoring(nw *Network, doc PlacementFile) (paths []*bitset.Set, conns []server.Connection, public []Connection, err error) {
	services := doc.ToServices()
	if len(doc.Hosts) != len(services) {
		return nil, nil, nil, fmt.Errorf("placemon: %d hosts for %d services", len(doc.Hosts), len(services))
	}
	if err := doc.Validate(nw); err != nil {
		return nil, nil, nil, err
	}
	inst, _, err := nw.prepare(services, PlaceConfig{Alpha: doc.Alpha})
	if err != nil {
		return nil, nil, nil, err
	}
	for s, h := range doc.Hosts {
		if h == placement.Unplaced {
			continue
		}
		ps, err := inst.ServicePaths(s, h)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("placemon: %w", err)
		}
		for i, p := range ps {
			paths = append(paths, p)
			conns = append(conns, server.Connection{Service: s, Client: services[s].Clients[i], Host: h})
			public = append(public, Connection{Service: s, Client: services[s].Clients[i], Host: h})
		}
	}
	if len(paths) == 0 {
		return nil, nil, nil, fmt.Errorf("placemon: placement has no monitored connections")
	}
	return paths, conns, public, nil
}

// NewServer builds the service for the placement described by doc, whose
// services and hosts must be valid for nw at doc.Alpha. The monitored
// connections are the routed (client, host) pairs of every placed
// service, in the same order Network.Observe reports them; connection
// indices in the ingest API refer to that order (see Server.Connections).
// The deployment becomes the server's "default" scenario; further
// scenarios may be added dynamically (see AddScenario and the
// /v1/scenarios API).
func NewServer(nw *Network, doc PlacementFile, cfg ServerConfig) (*Server, error) {
	paths, conns, public, err := buildMonitoring(nw, doc)
	if err != nil {
		return nil, err
	}
	sc, err := cfg.innerConfig()
	if err != nil {
		return nil, err
	}
	sc.NumNodes = nw.NumNodes()
	sc.Paths = paths
	sc.Connections = conns
	sc.Place = nw.placeFunc()
	inner, err := server.New(sc)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return &Server{inner: inner, conns: public}, nil
}

// placeFunc adapts Network.Place to the serving layer's job signature.
// Network methods are safe for concurrent use, so the closure is too.
// The request's trace span (carried by ctx into the worker pool) receives
// one stage per engine round, which the serving layer also folds into the
// round-duration histogram.
func (nw *Network) placeFunc() server.PlaceFunc {
	return func(ctx context.Context, req server.PlacementRequest) (*server.PlacementResult, error) {
		services := make([]Service, len(req.Services))
		for i, s := range req.Services {
			services[i] = Service{Name: s.Name, Clients: s.Clients}
		}
		var progress func(RoundProgress)
		if sp := trace.FromContext(ctx); sp != nil {
			progress = func(r RoundProgress) {
				sp.AddStage(fmt.Sprintf("placement round %d", r.Round), r.Duration,
					fmt.Sprintf("service=%d host=%d gain=%g candidates=%d evaluations=%d",
						r.Service, r.Host, r.Gain, r.Candidates, r.Evaluations))
			}
		}
		res, err := nw.Place(services, PlaceConfig{
			Alpha:     req.Alpha,
			Objective: ObjectiveKind(req.Objective),
			Algorithm: Algorithm(req.Algorithm),
			K:         req.K,
			Seed:      req.Seed,
			Progress:  progress,
			// The request context rides into the engine so a timed-out,
			// canceled, or drained job stops at the next round boundary.
			Context: ctx,
		})
		if err != nil {
			return nil, err
		}
		return &server.PlacementResult{
			Hosts:                 res.Hosts,
			Objective:             res.Objective,
			Coverage:              res.Coverage,
			Identifiable:          res.Identifiable,
			Distinguishable:       res.Distinguishable,
			WorstRelativeDistance: res.WorstRelativeDistance,
			Evaluations:           res.Evaluations,
		}, nil
	}
}

// Connections returns the monitored (client, host) pairs in ingest-index
// order: POST /v1/observations report entries name connections by their
// position in this slice.
func (s *Server) Connections() []Connection {
	return append([]Connection(nil), s.conns...)
}

// Handler returns the service's HTTP handler — the full API with
// middleware — for mounting under a custom server or httptest.
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// Serve accepts connections on ln until ctx is canceled, then drains
// gracefully: in-flight requests complete (bounded by DrainTimeout) and
// queued placement jobs finish. Returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return s.inner.Serve(ctx, ln)
}

// Close releases the worker pool without serving and, when the daemon
// persists state (WALDir or ScenarioDir), writes the final snapshot; a
// non-nil error means that snapshot failed and the daemon should exit
// non-zero. Idempotent, and implied by Serve returning.
func (s *Server) Close() error { return s.inner.Close() }

// Abort releases resources without the final fsync or snapshot — the
// emergency-shutdown path. State durability is whatever the WAL sync
// policy already provided.
func (s *Server) Abort() { s.inner.Abort() }

// ReadOnly reports whether a WAL write failure has frozen mutations
// (mutating requests answer 503 with Placemond-Read-Only until restart).
func (s *Server) ReadOnly() bool { return s.inner.ReadOnly() }

// VerifyIncremental cross-checks every scenario's incremental rolling
// diagnosis against a from-scratch recompute and reports the first
// divergence. The daemon never needs this in normal operation — the
// incremental path is exact by construction — but soak and crash
// harnesses call it to prove that exactness under hostile schedules.
func (s *Server) VerifyIncremental() error { return s.inner.VerifyIncremental() }

// StateExport returns the daemon's replayable state as deterministic
// JSON — the same document WAL compaction folds into snapshots. Two
// servers that ingested the same operation stream export identical
// bytes; crash harnesses lean on that.
func (s *Server) StateExport() ([]byte, error) { return s.inner.StateExport() }

// WriteMetrics renders the server's metrics in the Prometheus text
// exposition format (the same payload GET /metrics serves).
func (s *Server) WriteMetrics(w io.Writer) error {
	return s.inner.Registry().WriteText(w)
}
