package placemon

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/monitor"
	"repro/internal/placement"
	"repro/internal/tomography"
)

// This file is the operational side of the facade: generating the binary
// end-to-end observations a placement yields under failures, and running
// Boolean tomography over them.

// Observation holds the per-connection binary states for a placement.
type Observation struct {
	// Connections lists the (client, host) pairs in order.
	Connections []Connection
	// Failed[i] reports whether connection i is down.
	Failed []bool

	paths *monitor.PathSet
}

// Connection identifies one measured client-server pair.
type Connection struct {
	Service int
	Client  int
	Host    int
}

// Observe computes the connection states a placement would report when
// the given nodes have failed — the paper's measurement model: a
// connection is down iff its routed path traverses a failed node
// (endpoints included).
func (nw *Network) Observe(services []Service, hosts []int, alpha float64, failedNodes []int) (*Observation, error) {
	inst, _, err := nw.prepare(services, PlaceConfig{Alpha: alpha})
	if err != nil {
		return nil, err
	}
	if len(hosts) != len(services) {
		return nil, fmt.Errorf("placemon: %d hosts for %d services", len(hosts), len(services))
	}
	failed := bitset.New(nw.NumNodes())
	for _, v := range failedNodes {
		if v < 0 || v >= nw.NumNodes() {
			return nil, fmt.Errorf("placemon: failed node %d out of range", v)
		}
		failed.Add(v)
	}

	obs := &Observation{paths: monitor.NewPathSet(nw.NumNodes())}
	for s, h := range hosts {
		if h == placement.Unplaced {
			continue
		}
		paths, err := inst.ServicePaths(s, h)
		if err != nil {
			return nil, fmt.Errorf("placemon: %w", err)
		}
		for i, p := range paths {
			if err := obs.paths.Add(p); err != nil {
				return nil, fmt.Errorf("placemon: %w", err)
			}
			obs.Connections = append(obs.Connections, Connection{
				Service: s,
				Client:  services[s].Clients[i],
				Host:    h,
			})
			obs.Failed = append(obs.Failed, p.Intersects(failed))
		}
	}
	return obs, nil
}

// AnyFailure reports whether at least one connection is down.
func (o *Observation) AnyFailure() bool {
	for _, f := range o.Failed {
		if f {
			return true
		}
	}
	return false
}

// Diagnosis is the localization outcome over an observation.
type Diagnosis struct {
	// Candidates lists every failure set of size ≤ K consistent with the
	// observation; the truth is among them whenever it has ≤ K nodes.
	Candidates [][]int
	// DefinitelyFailed are nodes present in every candidate.
	DefinitelyFailed []int
	// PossiblyFailed are nodes present in some candidate.
	PossiblyFailed []int
	// Healthy are nodes proven up by a successful connection.
	Healthy []int
	// Unobserved are nodes on no measured connection.
	Unobserved []int
	// GreedyExplanation is a small failure set explaining the observation
	// (the related-work heuristic); nil when nothing failed.
	GreedyExplanation []int
}

// Ambiguity returns the number of alternative explanations beyond one.
func (d *Diagnosis) Ambiguity() int { return len(d.Candidates) - 1 }

// Unique reports whether exactly one candidate remains.
func (d *Diagnosis) Unique() bool { return len(d.Candidates) == 1 }

// Localize runs Boolean tomography over the observation with failure
// budget k.
func (nw *Network) Localize(o *Observation, k int) (*Diagnosis, error) {
	if o == nil || o.paths == nil {
		return nil, fmt.Errorf("placemon: observation was not produced by Observe")
	}
	tobs, err := tomography.NewObservation(o.paths, o.Failed)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	diag, err := tomography.Localize(tobs, k)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	out := &Diagnosis{
		Candidates:       diag.Consistent,
		DefinitelyFailed: diag.DefinitelyFailed,
		PossiblyFailed:   diag.PossiblyFailed,
		Healthy:          diag.Healthy,
		Unobserved:       diag.Unobserved,
	}
	if expl, err := tomography.GreedyExplanation(tobs); err == nil {
		out.GreedyExplanation = expl
	}
	return out, nil
}

// UncertaintyDegrees returns, for the measurement paths of a placement,
// the degree of uncertainty of every node (index NumNodes() is the
// virtual no-failure hypothesis v0): the number of other single-failure
// hypotheses indistinguishable from it. Zero means 1-identifiable.
func (nw *Network) UncertaintyDegrees(services []Service, hosts []int, alpha float64) ([]int, error) {
	inst, _, err := nw.prepare(services, PlaceConfig{Alpha: alpha})
	if err != nil {
		return nil, err
	}
	ps, err := inst.PathSet(placement.Placement{Hosts: append([]int(nil), hosts...)})
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return monitor.NewPartitionFromPaths(ps).Degrees(), nil
}
