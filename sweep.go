package placemon

import (
	"fmt"
	"slices"
	"sort"
)

// SweepPoint is one α-point of a monitoring-QoS tradeoff sweep: the three
// k = 1 monitoring measures of the placement the configured algorithm
// produced at that slack.
type SweepPoint struct {
	Alpha                 float64
	Coverage              int
	Identifiable          int
	Distinguishable       int64
	WorstRelativeDistance float64
}

// SweepConfig tunes Network.Sweep. The zero value sweeps α over
// {0, 0.1, …, 1} with the greedy distinguishability placement.
type SweepConfig struct {
	// Alphas lists the QoS slacks to evaluate (default 0..1 in steps of
	// 0.1). Values must lie in [0, 1].
	Alphas []float64
	// Objective and Algorithm select the placement strategy per α
	// (defaults: distinguishability, greedy).
	Objective ObjectiveKind
	Algorithm Algorithm
	// Seed drives AlgorithmRandom.
	Seed int64
}

// Sweep computes the monitoring-QoS tradeoff curve for a service set: the
// answer to "how much observability does each unit of QoS slack buy?"
// (the paper's Figs. 5-7 for a single algorithm). Points come back in
// ascending α order.
func (nw *Network) Sweep(services []Service, cfg SweepConfig) ([]SweepPoint, error) {
	alphas := cfg.Alphas
	if len(alphas) == 0 {
		alphas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	for _, a := range alphas {
		if a < 0 || a > 1 {
			return nil, fmt.Errorf("placemon: sweep alpha %g outside [0, 1]", a)
		}
	}
	sorted := append([]float64(nil), alphas...)
	sort.Float64s(sorted)
	// A repeated α would silently duplicate its point (and waste a full
	// placement run); one point per distinct slack.
	sorted = slices.Compact(sorted)

	points := make([]SweepPoint, 0, len(sorted))
	for _, alpha := range sorted {
		res, err := nw.Place(services, PlaceConfig{
			Alpha:     alpha,
			Objective: cfg.Objective,
			Algorithm: cfg.Algorithm,
			Seed:      cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("placemon: sweep at α=%g: %w", alpha, err)
		}
		points = append(points, SweepPoint{
			Alpha:                 alpha,
			Coverage:              res.Coverage,
			Identifiable:          res.Identifiable,
			Distinguishable:       res.Distinguishable,
			WorstRelativeDistance: res.WorstRelativeDistance,
		})
	}
	return points, nil
}
