package placemon

// This file is the benchmark harness of deliverable (d): one benchmark per
// table/figure of the paper's evaluation (Table I, Figs. 4-8) plus the
// ablation benches A1-A4 listed in DESIGN.md. Each figure bench runs the
// same driver the cmd/experiments binary uses, so `go test -bench=.`
// regenerates every artifact's data path end to end.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/experiments"
	"repro/internal/failsim"
	"repro/internal/graph"
	"repro/internal/matroid"
	"repro/internal/monitor"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

func benchPrepared(b *testing.B, name string) *experiments.Prepared {
	b.Helper()
	w, err := experiments.WorkloadByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := experiments.Prepare(w)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTableI regenerates Table I (topology characteristics).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("expected 3 rows")
		}
	}
}

// BenchmarkFig4 regenerates the Fig. 4 candidate-host box plots for each
// topology panel. A warm-up pass fills Prepared's per-α instance cache
// before the timer starts, so iterations measure the candidate-set
// statistics rather than repeated instance construction.
func BenchmarkFig4(b *testing.B) {
	for _, name := range []string{"Abovenet", "Tiscali", "AT&T"} {
		b.Run(name, func(b *testing.B) {
			p := benchPrepared(b, name)
			if _, err := experiments.Fig4(p, experiments.DefaultAlphas()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig4(p, experiments.DefaultAlphas()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLazyPlacement (A8): the CELF lazy-greedy engine versus the
// eager greedy on the Fig. 4 ISP topologies with the GD objective. Every
// sub-benchmark reports evaluations/op — marginal-gain objective
// evaluations per placement, the quantity lazy evaluation reduces — so
// snapshots diff the algorithmic saving, not just wall time. The paper's
// service counts (3/3/7) barely exercise the gain cache; the svc=20
// scaled workload at α = 0.6 is where CELF clears 2× on every topology.
func BenchmarkLazyPlacement(b *testing.B) {
	engines := []struct {
		name string
		run  func(*placement.Instance, placement.Objective) (*placement.Result, error)
	}{
		{"greedy", placement.Greedy},
		{"lazy", placement.GreedyLazy},
		{"lazy-parallel", func(inst *placement.Instance, obj placement.Objective) (*placement.Result, error) {
			return placement.GreedyLazyParallel(inst, obj, 0)
		}},
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range experiments.PaperWorkloads() {
		for _, services := range []int{w.NumServices, 20} {
			scaled := w
			scaled.NumServices = services
			p, err := experiments.Prepare(scaled)
			if err != nil {
				b.Fatal(err)
			}
			inst, err := p.Instance(0.6)
			if err != nil {
				b.Fatal(err)
			}
			for _, eng := range engines {
				b.Run(fmt.Sprintf("%s/svc=%d/%s", w.Topo.Name, services, eng.name), func(b *testing.B) {
					evals := 0
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := eng.run(inst, obj)
						if err != nil {
							b.Fatal(err)
						}
						evals += res.Evaluations
					}
					b.ReportMetric(float64(evals)/float64(b.N), "evaluations/op")
				})
			}
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5: Abovenet curves including the
// brute-force optimum.
func BenchmarkFig5(b *testing.B) {
	p := benchPrepared(b, "Abovenet")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MonitoringCurves(p, experiments.CurvesConfig{
			Alphas:    experiments.DefaultAlphas(),
			IncludeBF: true,
			RDSeeds:   5,
			Seed:      1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6: Tiscali curves.
func BenchmarkFig6(b *testing.B) {
	p := benchPrepared(b, "Tiscali")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MonitoringCurves(p, experiments.CurvesConfig{
			Alphas:  experiments.DefaultAlphas(),
			RDSeeds: 5,
			Seed:    1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: AT&T curves.
func BenchmarkFig7(b *testing.B) {
	p := benchPrepared(b, "AT&T")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MonitoringCurves(p, experiments.CurvesConfig{
			Alphas:  experiments.DefaultAlphas(),
			RDSeeds: 5,
			Seed:    1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: the AT&T degree-of-uncertainty
// distribution at α = 0.6.
func BenchmarkFig8(b *testing.B) {
	p := benchPrepared(b, "AT&T")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(p, experiments.Fig8Config{Alpha: 0.6, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ------------------------------------------------------------

// ablationPaths builds the AT&T GD path set used by ablation benches.
func ablationPaths(b *testing.B) *monitor.PathSet {
	b.Helper()
	p := benchPrepared(b, "AT&T")
	inst, err := p.Instance(0.6)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := placement.Greedy(inst, obj)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := inst.PathSet(res.Placement)
	if err != nil {
		b.Fatal(err)
	}
	return ps
}

// BenchmarkIncrementalQ (A1): computing |S_1|, |D_1| with the incremental
// partition refinement of Section V-D1 …
func BenchmarkIncrementalQ(b *testing.B) {
	ps := ablationPaths(b)
	paths := make([]*bitset.Set, ps.Len())
	for i := range paths {
		paths[i] = ps.Path(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := monitor.NewPartition(ps.NumNodes())
		for _, p := range paths {
			pt.Refine([]*bitset.Set{p})
		}
		_ = pt.S1()
		_ = pt.D1()
	}
}

// BenchmarkNaiveQ (A1): … versus the literal Algorithm 1 adjacency-matrix
// equivalence graph.
func BenchmarkNaiveQ(b *testing.B) {
	ps := ablationPaths(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := monitor.NewEquivalenceGraph(ps)
		_ = q.S1()
		_ = q.D1()
	}
}

// BenchmarkLazyGreedy and BenchmarkPlainGreedy (A2): lazy evaluation
// versus full re-evaluation in the matroid greedy on the Tiscali GD
// instance.
func greedyFixture(b *testing.B) (matroid.IndependenceSystem, matroid.SetFunction, int) {
	b.Helper()
	p := benchPrepared(b, "Tiscali")
	inst, err := p.Instance(0.6)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := inst.IndependenceSystem(nil)
	if err != nil {
		b.Fatal(err)
	}
	return sys, inst.ObjectiveOnElements(obj), inst.NumServices()
}

func BenchmarkPlainGreedy(b *testing.B) {
	sys, f, steps := greedyFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matroid.Greedy(sys, f, steps)
	}
}

func BenchmarkLazyGreedy(b *testing.B) {
	sys, f, steps := greedyFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matroid.LazyGreedy(sys, f, steps)
	}
}

// BenchmarkCapacityGreedy (A3): the Section VII-A capacity-constrained
// greedy across demand skews (p = ⌈r_max/r_min⌉ + 1 grows left to right).
func BenchmarkCapacityGreedy(b *testing.B) {
	p := benchPrepared(b, "Tiscali")
	inst, err := p.Instance(0.6)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, skew := range []float64{1, 2, 4} {
		b.Run(fmt.Sprintf("skew=%g", skew), func(b *testing.B) {
			demand := make([]float64, inst.NumServices())
			for s := range demand {
				demand[s] = 1
				if s%2 == 1 {
					demand[s] = skew
				}
			}
			capacity := map[int]float64{}
			for v := 0; v < inst.NumNodes(); v++ {
				capacity[v] = skew
			}
			cons := placement.CapacityConstraints{Demand: demand, Capacity: capacity}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := placement.GreedyCapacitated(inst, obj, cons); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNodesOfInterest (A4): the Section VII-B interest-restricted
// objectives versus the full ones.
func BenchmarkNodesOfInterest(b *testing.B) {
	p := benchPrepared(b, "Tiscali")
	inst, err := p.Instance(0.6)
	if err != nil {
		b.Fatal(err)
	}
	interest := make([]int, 0, inst.NumNodes()/4)
	for v := 0; v < inst.NumNodes(); v += 4 {
		interest = append(interest, v)
	}
	full, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	restricted := placement.NewDistinguishabilityOfInterest(inst.NumNodes(), interest)
	for _, tc := range []struct {
		name string
		obj  placement.Objective
	}{
		{"full", full},
		{"interest", restricted},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := placement.Greedy(inst, tc.obj); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRouterConstruction measures the all-pairs shortest path
// precomputation (the Section III-A candidate-set prerequisite).
func BenchmarkRouterConstruction(b *testing.B) {
	topo := topology.MustBuild(topology.ATT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.New(topo.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneralKDistinguishability measures the exact |D_k| enumeration
// cost growth in k on a small network (the reason the paper's evaluation
// uses k = 1).
func BenchmarkGeneralKDistinguishability(b *testing.B) {
	p := benchPrepared(b, "Abovenet")
	inst, err := p.Instance(0.5)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := placement.Greedy(inst, obj)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := inst.PathSet(res.Placement)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = monitor.DistinguishabilityK(ps, k)
			}
		})
	}
}

// BenchmarkK2 regenerates the k = 2 extension sweep (exact |D_2| / |S_2|
// enumeration on Abovenet).
func BenchmarkK2(b *testing.B) {
	p := benchPrepared(b, "Abovenet")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.K2Sweep(p, experiments.K2Config{
			Alphas:  []float64{0, 0.5, 1},
			RDSeeds: 3,
			Seed:    1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalSearch (A5): the interchange polish after greedy, per
// objective.
func BenchmarkLocalSearch(b *testing.B) {
	p := benchPrepared(b, "Tiscali")
	inst, err := p.Instance(0.6)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.GreedyWithLocalSearch(inst, obj, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailureInjection measures the operational localization
// pipeline (observe + localize + greedy explanation) per injected
// failure.
func BenchmarkFailureInjection(b *testing.B) {
	ps := ablationPaths(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := failsim.Run(ps, failsim.Config{K: 1, Trials: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSolvers (A6): brute force versus branch and bound with
// the submodular pruning bound, both computing the exact D_1 optimum on
// the Abovenet workload at α = 0.5.
func BenchmarkExactSolvers(b *testing.B) {
	p := benchPrepared(b, "Abovenet")
	inst, err := p.Instance(0.5)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("BruteForce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := placement.BruteForce(inst, obj, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BranchAndBound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := placement.BranchAndBound(inst, obj, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGreedyParallel (A7): sequential Algorithm 2 versus the
// goroutine-fanned variant on the AT&T workload (the k = 2 objective
// makes single evaluations expensive enough for parallelism to pay).
func BenchmarkGreedyParallel(b *testing.B) {
	p := benchPrepared(b, "AT&T")
	inst, err := p.Instance(0.6)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := placement.Greedy(inst, obj); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := placement.GreedyParallel(inst, obj, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOpLoop regenerates the operational-loop experiment (X7): the
// full trace → simulation → daemon pipeline scored against ground truth.
func BenchmarkOpLoop(b *testing.B) {
	p := benchPrepared(b, "Tiscali")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OpLoopSweep(p, experiments.OpLoopConfig{
			Alpha:        0.6,
			ProbePeriods: []float64{5, 20},
			Horizon:      2000,
			Seed:         1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// hierarchyBenchInstance builds a placement instance over a generated
// hierarchical ISP: services carved from the access-host tier, a lazy
// router (the large-scale serving configuration), and optional extra
// chord edges on top of the base wiring. clientsPerService == 0 takes
// every host in the service's block; otherwise that many, spread evenly
// across it.
func hierarchyBenchInstance(b *testing.B, spec topology.HierarchySpec, numServices, clientsPerService int, extras [][2]int) *placement.Instance {
	b.Helper()
	base, err := topology.BuildHierarchy(spec)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.New(base.Graph.NumNodes())
	for _, e := range base.Graph.Edges() {
		if err := g.AddWeightedEdge(e.U, e.V, e.Weight); err != nil {
			b.Fatal(err)
		}
	}
	for _, e := range extras {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
	r, err := routing.NewLazy(g)
	if err != nil {
		b.Fatal(err)
	}
	cc := base.CandidateClients
	stride := len(cc) / numServices
	svcs := make([]placement.Service, numServices)
	for s := range svcs {
		block := cc[s*stride : (s+1)*stride]
		clients := block
		if clientsPerService > 0 && clientsPerService < len(block) {
			step := len(block) / clientsPerService
			clients = make([]graph.NodeID, clientsPerService)
			for j := range clients {
				clients[j] = block[j*step]
			}
		}
		svcs[s] = placement.Service{Name: fmt.Sprintf("svc-%d", s), Clients: clients}
	}
	inst, err := placement.NewInstance(r, svcs, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkStochasticFrontier (A9) charts the evaluation/quality
// frontier of the sampled greedy on generated hierarchical ISPs: for
// each scale, the exact n·k greedy sweep is the baseline, and each ε
// row reports its objective evaluations, its value as a fraction of the
// exact-greedy value (value-ratio), and the evaluation saving
// (eval-saving, the ×-fewer-evaluations factor; the structural bound is
// σ/ln(1/ε), independent of the ground-set size). The warm-place row
// times only the warm-started greedy on a prebuilt single-edge-delta
// instance — the algorithmic half of the server's
// PUT /v1/scenarios/{id}/network hot path — reporting the gain-cache
// hit counters; instance-rebuild times the other half (topology, lazy
// router, instance construction), which the re-placement pays once per
// delta regardless of algorithm. The small scale runs the paper's
// headline distinguishability objective and is the CI smoke gate;
// hier10k is the archived 10k-node frontier on coverage (MCSP), the
// objective whose evaluations stay cheap enough at that scale for an
// honest exact baseline (a distinguishability evaluation clones a
// 10k-node partition, ~3ms, which makes exact greedy a multi-hour
// measurement — see EXPERIMENTS.md for that trade-off).
func BenchmarkStochasticFrontier(b *testing.B) {
	distinguish, err := placement.NewDistinguishability(1)
	if err != nil {
		b.Fatal(err)
	}
	scales := []struct {
		name              string
		spec              topology.HierarchySpec
		services, clients int
		obj               placement.Objective
		epsilons          []float64
	}{
		{"small", topology.HierarchySpec{Name: "hier-small", Core: 4, AggPerCore: 2, EdgePerAgg: 3, HostsPerEdge: 4, Seed: 7}, 3, 0, distinguish, []float64{0.05, 0.1, 0.2}},
		{"hier10k", topology.Hierarchy10k, 12, 40, placement.NewCoverage(), []float64{0.1, 0.2, 0.4}},
	}
	for _, sc := range scales {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			obj := sc.obj
			inst := hierarchyBenchInstance(b, sc.spec, sc.services, sc.clients, nil)
			exact, err := placement.Greedy(inst, obj)
			if err != nil {
				b.Fatal(err)
			}
			if exact.Value <= 0 {
				b.Fatalf("exact greedy value %v on %s", exact.Value, sc.name)
			}
			b.Run("exact", func(b *testing.B) {
				evals := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := placement.Greedy(inst, obj)
					if err != nil {
						b.Fatal(err)
					}
					evals += res.Evaluations
				}
				b.ReportMetric(float64(evals)/float64(b.N), "evaluations/op")
				b.ReportMetric(1, "value-ratio")
			})
			for _, eps := range sc.epsilons {
				b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
					evals, val := 0, 0.0
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := placement.GreedyStochastic(inst, obj, eps, 42)
						if err != nil {
							b.Fatal(err)
						}
						evals += res.Evaluations
						val = res.Value
					}
					perOp := float64(evals) / float64(b.N)
					b.ReportMetric(perOp, "evaluations/op")
					b.ReportMetric(val/exact.Value, "value-ratio")
					b.ReportMetric(float64(exact.Evaluations)/perOp, "eval-saving")
				})
			}
			// A chord between edge routers under different cores: a
			// realistic single-link change that reroutes a slice of the
			// measurement paths.
			aggBase := sc.spec.Core
			edgeBase := aggBase + sc.spec.Core*sc.spec.AggPerCore
			numEdge := sc.spec.Core * sc.spec.AggPerCore * sc.spec.EdgePerAgg
			chord := [2]int{edgeBase, edgeBase + numEdge - 1}
			b.Run("instance-rebuild", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					hierarchyBenchInstance(b, sc.spec, sc.services, sc.clients, [][2]int{chord})
				}
			})
			b.Run("warm-place", func(b *testing.B) {
				delta := hierarchyBenchInstance(b, sc.spec, sc.services, sc.clients, [][2]int{chord})
				w := placement.NewWarmPlacer()
				if _, _, err := w.Place(context.Background(), inst, obj, 0, nil); err != nil {
					b.Fatal(err)
				}
				var reused, recomputed int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Alternate delta/base so every iteration re-places
					// against a changed topology instead of a cache-warm
					// repeat of the same instance.
					next := delta
					if i%2 == 1 {
						next = inst
					}
					_, stats, err := w.Place(context.Background(), next, obj, 0, nil)
					if err != nil {
						b.Fatal(err)
					}
					reused += stats.Reused
					recomputed += stats.Recomputed
				}
				b.ReportMetric(float64(reused)/float64(b.N), "gains-reused/op")
				b.ReportMetric(float64(recomputed)/float64(b.N), "gains-recomputed/op")
			})
		})
	}
}
