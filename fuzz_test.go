package placemon

import (
	"math"
	"strings"
	"testing"
)

// FuzzLoadPlacement checks that the placement-document loader never
// panics, that every accepted document satisfies the structural
// invariants LoadPlacement promises, and that accepted documents
// round-trip through SavePlacement unchanged in meaning.
func FuzzLoadPlacement(f *testing.F) {
	seeds := []string{
		``,
		`not json`,
		`{}`,
		`{"alpha":0.5,"hosts":[1],"services":[{"clients":[1,2]}]}`,
		`{"topology":"Abovenet","alpha":0.5,"hosts":[4,5],"services":[{"name":"svc","clients":[1,2]},{"clients":[3]}]}`,
		`{"alpha":0.5,"hosts":[-1],"services":[{"clients":[0]}]}`,
		`{"alpha":-0.1,"hosts":[1],"services":[{"clients":[1]}]}`,
		`{"alpha":2,"hosts":[1],"services":[{"clients":[1]}]}`,
		`{"alpha":0.5,"hosts":[-2],"services":[{"clients":[1]}]}`,
		`{"alpha":0.5,"hosts":[1],"services":[{"clients":[-1]}]}`,
		`{"alpha":0.5,"hosts":[1,2],"services":[{"clients":[1]}]}`,
		`{"alpha":0.5,"hosts":[1],"services":[{"clients":[]}]}`,
		`{"alpha":0.5,"hosts":[1],"services":[{"clients":[1]}],"surprise":true}`,
		`{"alpha":1e308,"hosts":[1],"services":[{"clients":[1]}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := LoadPlacement(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted documents must satisfy the advertised invariants.
		if math.IsNaN(doc.Alpha) || doc.Alpha < 0 || doc.Alpha > 1 {
			t.Fatalf("accepted alpha %v", doc.Alpha)
		}
		if len(doc.Hosts) != len(doc.Services) {
			t.Fatalf("accepted %d hosts for %d services", len(doc.Hosts), len(doc.Services))
		}
		for s, h := range doc.Hosts {
			if h < -1 {
				t.Fatalf("accepted host %d for service %d", h, s)
			}
		}
		for i, svc := range doc.Services {
			if len(svc.Clients) == 0 {
				t.Fatalf("accepted clientless service %d", i)
			}
			for _, c := range svc.Clients {
				if c < 0 {
					t.Fatalf("accepted negative client %d in service %d", c, i)
				}
			}
		}
		// Round trip: save and reload to the same document.
		var buf strings.Builder
		if err := SavePlacement(&buf, doc); err != nil {
			t.Fatalf("save accepted document: %v", err)
		}
		again, err := LoadPlacement(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("reload saved document: %v\n%s", err, buf.String())
		}
		if again.Topology != doc.Topology || again.Alpha != doc.Alpha ||
			len(again.Hosts) != len(doc.Hosts) || len(again.Services) != len(doc.Services) {
			t.Fatalf("round trip changed document:\n%+v\n%+v", again, doc)
		}
	})
}
