package placemon

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/placement"
	"repro/internal/tomography"
)

// This file exposes the library's extensions beyond the paper's core
// algorithms: local-search polishing, the maximum-identifiability measure
// of the paper's reference [5], and probability-aware diagnosis ranking
// (related work [13]).

// AlgorithmGreedyLS runs the greedy of Algorithm 2 followed by an
// interchange local search — never worse than plain greedy, at extra
// evaluation cost.
const AlgorithmGreedyLS Algorithm = "greedy+ls"

// placeLS is dispatched from Place for AlgorithmGreedyLS; kept here so the
// extension surface lives in one file.
func placeLS(inst *placement.Instance, obj placement.Objective) (*placement.Result, error) {
	return placement.GreedyWithLocalSearch(inst, obj, 0)
}

// MaxIdentifiability returns the largest failure budget k for which node
// v's state is always uniquely determined under the measurement paths of
// the given placement (0 when v is not even 1-identifiable; the node
// count when no set of other nodes can mask v). Exponential in the
// answer; intended for small-to-medium networks.
func (nw *Network) MaxIdentifiability(services []Service, hosts []int, alpha float64, v int) (int, error) {
	ps, err := nw.pathsOf(services, hosts, alpha)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= nw.NumNodes() {
		return 0, fmt.Errorf("placemon: node %d out of range", v)
	}
	return monitor.MaxIdentifiability(ps, v), nil
}

// NetworkMaxIdentifiability returns the largest k such that every covered
// node is k-identifiable — the placement-wide localization guarantee.
func (nw *Network) NetworkMaxIdentifiability(services []Service, hosts []int, alpha float64) (int, error) {
	ps, err := nw.pathsOf(services, hosts, alpha)
	if err != nil {
		return 0, err
	}
	return monitor.NetworkMaxIdentifiability(ps), nil
}

// RankedFailure is a candidate failure set with its posterior probability
// given the observation and a per-node failure prior.
type RankedFailure struct {
	Nodes     []int
	Posterior float64
}

// RankFailures ranks every failure hypothesis of size ≤ k consistent with
// the observation by posterior probability under independent per-node
// failure priors (each in (0, 1)), most likely first.
func (nw *Network) RankFailures(o *Observation, priors []float64, k int) ([]RankedFailure, error) {
	if o == nil || o.paths == nil {
		return nil, fmt.Errorf("placemon: observation was not produced by Observe")
	}
	prior, err := tomography.NewPrior(priors)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	tobs, err := tomography.NewObservation(o.paths, o.Failed)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	ranked, err := tomography.RankCandidates(tobs, prior, k)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	out := make([]RankedFailure, len(ranked))
	for i, r := range ranked {
		out[i] = RankedFailure{Nodes: r.Failure, Posterior: r.Posterior}
	}
	return out, nil
}

// MostLikelyExplanation returns a failure set explaining the observation,
// preferring failure-prone nodes (weighted set cover under the priors).
func (nw *Network) MostLikelyExplanation(o *Observation, priors []float64) ([]int, error) {
	if o == nil || o.paths == nil {
		return nil, fmt.Errorf("placemon: observation was not produced by Observe")
	}
	prior, err := tomography.NewPrior(priors)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	tobs, err := tomography.NewObservation(o.paths, o.Failed)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	expl, err := tomography.MostLikelyExplanation(tobs, prior)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return expl, nil
}

// pathsOf materializes the measurement paths of a placement.
func (nw *Network) pathsOf(services []Service, hosts []int, alpha float64) (*monitor.PathSet, error) {
	inst, _, err := nw.prepare(services, PlaceConfig{Alpha: alpha})
	if err != nil {
		return nil, err
	}
	ps, err := inst.PathSet(placement.Placement{Hosts: append([]int(nil), hosts...)})
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return ps, nil
}
