package placemon

import (
	"reflect"
	"strings"
	"testing"
)

// fig1Network is the paper's Fig. 1 example as a facade Network:
// r=0, hosts a..d = 1..4, clients e..h = 5..8.
func fig1Network(t testing.TB) *Network {
	t.Helper()
	edges := []Edge{
		{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 5}, {2, 6}, {3, 7}, {4, 8},
	}
	nw, err := NewNetwork(9, edges)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func fig1Services(n int) []Service {
	services := make([]Service, n)
	for i := range services {
		services[i] = Service{Name: "svc", Clients: []int{5, 6, 7, 8}}
	}
	return services
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(3, []Edge{{0, 1}}); err == nil {
		t.Fatal("disconnected graph should error")
	}
	if _, err := NewNetwork(2, []Edge{{0, 0}}); err == nil {
		t.Fatal("self loop should error")
	}
	if _, err := NewNetwork(0, nil); err == nil {
		t.Fatal("empty graph should error")
	}
}

func TestLoadNetwork(t *testing.T) {
	nw, err := Load(strings.NewReader("edge 0 1\nedge 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != 3 || nw.NumLinks() != 2 {
		t.Fatalf("shape = %d/%d", nw.NumNodes(), nw.NumLinks())
	}
	if got := nw.SuggestedClients(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("SuggestedClients = %v", got)
	}
	if _, err := Load(strings.NewReader("garbage here extra fields")); err == nil {
		t.Fatal("bad input should error")
	}
}

func TestBuildTopology(t *testing.T) {
	for _, name := range TopologyNames() {
		nw, err := BuildTopology(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if nw.NumNodes() == 0 || len(nw.SuggestedClients()) == 0 {
			t.Fatalf("%s: degenerate network", name)
		}
	}
	if _, err := BuildTopology("nope"); err == nil {
		t.Fatal("unknown topology should error")
	}
	if len(TopologyNames()) != 3 {
		t.Fatal("expected 3 built-in topologies")
	}
}

func TestNetworkQueries(t *testing.T) {
	nw := fig1Network(t)
	if d := nw.Distance(5, 0); d != 2 {
		t.Fatalf("Distance = %v, want 2", d)
	}
	if p := nw.PathNodes(5, 0); !reflect.DeepEqual(p, []int{5, 1, 0}) {
		t.Fatalf("PathNodes = %v", p)
	}
	if nw.NodeLabel(0) != "0" {
		t.Fatalf("NodeLabel = %q", nw.NodeLabel(0))
	}
}

func TestPlaceDefaultsGreedyDistinguishability(t *testing.T) {
	nw := fig1Network(t)
	res, err := nw.Place(fig1Services(5), PlaceConfig{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 5 {
		t.Fatalf("Hosts = %v", res.Hosts)
	}
	// Fig. 1 discussion: spreading across hosts identifies all 9 nodes.
	if res.Identifiable != 9 {
		t.Fatalf("Identifiable = %d, want 9", res.Identifiable)
	}
	if res.Distinguishable != 45 {
		t.Fatalf("Distinguishable = %d, want 45", res.Distinguishable)
	}
	if res.WorstRelativeDistance > 0.5 {
		t.Fatalf("QoS constraint violated: %v", res.WorstRelativeDistance)
	}
}

func TestPlaceQoSBaseline(t *testing.T) {
	nw := fig1Network(t)
	res, err := nw.Place(fig1Services(5), PlaceConfig{Alpha: 0.5, Algorithm: AlgorithmQoS})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hosts {
		if h != 0 {
			t.Fatalf("QoS should stack services on r: %v", res.Hosts)
		}
	}
	if res.Identifiable != 1 {
		t.Fatalf("QoS Identifiable = %d, want 1", res.Identifiable)
	}
}

func TestPlaceAlgorithmsAndObjectives(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(2)
	for _, algo := range []Algorithm{AlgorithmGreedy, AlgorithmLazy, AlgorithmLazyParallel, AlgorithmQoS, AlgorithmRandom, AlgorithmBruteForce} {
		for _, obj := range []ObjectiveKind{ObjectiveCoverage, ObjectiveIdentifiability, ObjectiveDistinguishability} {
			res, err := nw.Place(services, PlaceConfig{Alpha: 0.5, Algorithm: algo, Objective: obj, Seed: 3})
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, obj, err)
			}
			if len(res.Hosts) != 2 {
				t.Fatalf("%s/%s: hosts %v", algo, obj, res.Hosts)
			}
		}
	}
	if _, err := nw.Place(services, PlaceConfig{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	if _, err := nw.Place(services, PlaceConfig{Objective: "nope"}); err == nil {
		t.Fatal("unknown objective should error")
	}
	if _, err := nw.Place(nil, PlaceConfig{}); err == nil {
		t.Fatal("no services should error")
	}
}

// TestPlaceLazyMatchesGreedy checks the facade contract of the lazy
// engine: identical placements and objective values to explicit greedy
// for every objective, fewer evaluations for the submodular ones, and a
// default algorithm that routes submodular objectives through the lazy
// path.
func TestPlaceLazyMatchesGreedy(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(5)
	for _, obj := range []ObjectiveKind{ObjectiveCoverage, ObjectiveIdentifiability, ObjectiveDistinguishability} {
		greedy, err := nw.Place(services, PlaceConfig{Alpha: 0.5, Objective: obj, Algorithm: AlgorithmGreedy})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{AlgorithmLazy, AlgorithmLazyParallel} {
			lazy, err := nw.Place(services, PlaceConfig{Alpha: 0.5, Objective: obj, Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(lazy.Hosts, greedy.Hosts) || lazy.Objective != greedy.Objective {
				t.Fatalf("%s/%s: %v (%v) != greedy %v (%v)",
					algo, obj, lazy.Hosts, lazy.Objective, greedy.Hosts, greedy.Objective)
			}
			if obj != ObjectiveIdentifiability && lazy.Evaluations >= greedy.Evaluations {
				t.Fatalf("%s/%s: lazy used %d evaluations, greedy %d",
					algo, obj, lazy.Evaluations, greedy.Evaluations)
			}
		}
		// The default algorithm is lazy exactly when the objective is
		// submodular; identifiability keeps the exact greedy (and its
		// evaluation count) because its gains admit no caching bound.
		def, err := nw.Place(services, PlaceConfig{Alpha: 0.5, Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(def.Hosts, greedy.Hosts) {
			t.Fatalf("default/%s: hosts %v != greedy %v", obj, def.Hosts, greedy.Hosts)
		}
		if obj == ObjectiveIdentifiability && def.Evaluations != greedy.Evaluations {
			t.Fatalf("default/%s: evaluations %d != greedy %d (should not take the lazy path)",
				obj, def.Evaluations, greedy.Evaluations)
		}
		if obj != ObjectiveIdentifiability && def.Evaluations >= greedy.Evaluations {
			t.Fatalf("default/%s: evaluations %d not below greedy %d (lazy default not applied)",
				obj, def.Evaluations, greedy.Evaluations)
		}
	}
	// Lazy cannot honor capacity constraints; only greedy can.
	if _, err := nw.Place(fig1Services(2), PlaceConfig{
		Alpha:     0.5,
		Algorithm: AlgorithmLazy,
		Capacity:  &Capacity{Demand: []float64{1, 1}},
	}); err == nil {
		t.Fatal("capacity with lazy algorithm should error")
	}
}

func TestPlaceWithCapacity(t *testing.T) {
	nw := fig1Network(t)
	res, err := nw.Place(fig1Services(5), PlaceConfig{
		Alpha: 0.5,
		Capacity: &Capacity{
			Demand:       []float64{1, 1, 1, 1, 1},
			HostCapacity: map[int]float64{0: 1, 1: 1, 2: 1, 3: 1, 4: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, h := range res.Hosts {
		if seen[h] {
			t.Fatalf("host %d reused under capacity 1: %v", h, res.Hosts)
		}
		seen[h] = true
	}
}

func TestPlaceWithInterest(t *testing.T) {
	nw := fig1Network(t)
	res, err := nw.Place(fig1Services(2), PlaceConfig{
		Alpha:         0.5,
		Objective:     ObjectiveIdentifiability,
		InterestNodes: []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 2 {
		t.Fatalf("interest objective = %v, cannot exceed |N_I| = 2", res.Objective)
	}
	if _, err := nw.Place(fig1Services(1), PlaceConfig{
		Objective: ObjectiveIdentifiability, InterestNodes: []int{0}, K: 2,
	}); err == nil {
		t.Fatal("interest with K>1 should error")
	}
	if _, err := nw.Place(fig1Services(1), PlaceConfig{
		Objective: ObjectiveDistinguishability, InterestNodes: []int{0}, K: 2,
	}); err == nil {
		t.Fatal("interest with K>1 should error")
	}
}

func TestCandidateHosts(t *testing.T) {
	nw := fig1Network(t)
	hosts, err := nw.CandidateHosts([]int{5, 6, 7, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hosts, []int{0}) {
		t.Fatalf("H(0) = %v, want [0]", hosts)
	}
	hosts, err = nw.CandidateHosts([]int{5, 6, 7, 8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 5 {
		t.Fatalf("H(0.5) = %v", hosts)
	}
}

func TestEvaluateArbitraryPlacement(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(4)
	res, err := nw.Evaluate(services, []int{1, 2, 3, 4}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Identifiable != 9 {
		t.Fatalf("Identifiable = %d, want 9", res.Identifiable)
	}
	if _, err := nw.Evaluate(services, []int{1}, 0.5); err == nil {
		t.Fatal("wrong host count should error")
	}
}

func TestObserveAndLocalize(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(4)
	hosts := []int{1, 2, 3, 4}

	// Fail node a (=1): connections through a fail.
	obs, err := nw.Observe(services, hosts, 0.5, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !obs.AnyFailure() {
		t.Fatal("expected failed connections")
	}
	diag, err := nw.Localize(obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Unique() {
		t.Fatalf("candidates = %v, want unique", diag.Candidates)
	}
	if !reflect.DeepEqual(diag.Candidates[0], []int{1}) {
		t.Fatalf("candidate = %v, want [1]", diag.Candidates[0])
	}
	if !reflect.DeepEqual(diag.DefinitelyFailed, []int{1}) {
		t.Fatalf("DefinitelyFailed = %v", diag.DefinitelyFailed)
	}
	if !reflect.DeepEqual(diag.GreedyExplanation, []int{1}) {
		t.Fatalf("GreedyExplanation = %v", diag.GreedyExplanation)
	}
	if diag.Ambiguity() != 0 {
		t.Fatalf("Ambiguity = %d", diag.Ambiguity())
	}
}

func TestObserveNoFailure(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(1)
	obs, err := nw.Observe(services, []int{0}, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if obs.AnyFailure() {
		t.Fatal("no failures injected")
	}
	if len(obs.Connections) != 4 {
		t.Fatalf("connections = %d, want 4", len(obs.Connections))
	}
}

func TestObserveValidation(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(1)
	if _, err := nw.Observe(services, []int{0, 1}, 0.5, nil); err == nil {
		t.Fatal("host count mismatch should error")
	}
	if _, err := nw.Observe(services, []int{0}, 0.5, []int{99}); err == nil {
		t.Fatal("bad failed node should error")
	}
	if _, err := nw.Localize(&Observation{}, 1); err == nil {
		t.Fatal("hand-rolled observation should error")
	}
}

func TestUncertaintyDegrees(t *testing.T) {
	nw := fig1Network(t)
	services := fig1Services(1)
	// QoS placement (host r): clients and their access nodes pair up.
	deg, err := nw.UncertaintyDegrees(services, []int{0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(deg) != 10 { // 9 nodes + v0
		t.Fatalf("degrees = %v", deg)
	}
	if deg[0] != 0 {
		t.Fatalf("r should be identifiable, degree %d", deg[0])
	}
	if deg[1] != 1 || deg[5] != 1 {
		t.Fatalf("paired nodes should have degree 1: %v", deg)
	}
}

func TestCapacityRequiresGreedy(t *testing.T) {
	nw := fig1Network(t)
	_, err := nw.Place(fig1Services(2), PlaceConfig{
		Alpha:     0.5,
		Algorithm: AlgorithmQoS,
		Capacity:  &Capacity{Demand: []float64{1, 1}},
	})
	if err == nil {
		t.Fatal("capacity with non-greedy algorithm should error")
	}
}
