package placemon_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	placemon "repro"
)

// TestServerEndToEnd is the acceptance path for the serving layer: place
// with the in-process greedy, stand the HTTP service up on that
// placement, inject a ground-truth failure through Observe, push the
// resulting connection states through POST /v1/observations, and check
// that GET /v1/diagnosis localizes the injected node, GET /metrics
// exposes the event counters, and a placement job submitted through the
// worker pool returns the same hosts as the in-process greedy.
func TestServerEndToEnd(t *testing.T) {
	nw, err := placemon.BuildTopology("Abovenet")
	if err != nil {
		t.Fatal(err)
	}
	clients := nw.SuggestedClients()
	if len(clients) < 4 {
		t.Fatalf("only %d suggested clients", len(clients))
	}
	services := []placemon.Service{
		{Name: "svc-0", Clients: clients[:2]},
		{Name: "svc-1", Clients: clients[2:4]},
	}
	const alpha = 0.6
	inProc, err := nw.Place(services, placemon.PlaceConfig{
		Alpha:     alpha,
		Objective: placemon.ObjectiveDistinguishability,
		Algorithm: placemon.AlgorithmGreedy,
	})
	if err != nil {
		t.Fatal(err)
	}

	doc := placemon.NewPlacementFile("Abovenet", alpha, services, inProc.Hosts)
	srv, err := placemon.NewServer(nw, doc, placemon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The server's connection order must match Observe's, so observation
	// indices line up between the in-process and network paths.
	failNode := inProc.Hosts[0]
	obs, err := nw.Observe(services, inProc.Hosts, alpha, []int{failNode})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srv.Connections(), obs.Connections) {
		t.Fatalf("server connections %v != Observe connections %v", srv.Connections(), obs.Connections)
	}
	if !obs.AnyFailure() {
		t.Fatalf("failing host %d broke no connection", failNode)
	}

	// Ingest: every connection state in one batch, exactly as a probe
	// fleet would report it.
	var reports []string
	for i, down := range obs.Failed {
		reports = append(reports, fmt.Sprintf(`{"connection": %d, "up": %v}`, i, !down))
	}
	body := fmt.Sprintf(`{"time": 1, "reports": [%s]}`, strings.Join(reports, ","))
	resp, err := http.Post(ts.URL+"/v1/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ingest struct {
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	mustDecode(t, resp, &ingest)
	if len(ingest.Events) == 0 || ingest.Events[0].Kind != "outage-started" {
		t.Fatalf("ingest events = %+v, want outage-started first", ingest.Events)
	}

	// Diagnosis over HTTP must contain the injected node.
	resp, err = http.Get(ts.URL + "/v1/diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	var diag struct {
		InOutage  bool `json:"in_outage"`
		Diagnosis *struct {
			Candidates     [][]int `json:"candidates"`
			PossiblyFailed []int   `json:"possibly_failed"`
		} `json:"diagnosis"`
	}
	mustDecode(t, resp, &diag)
	if !diag.InOutage || diag.Diagnosis == nil {
		t.Fatalf("diagnosis = %+v, want an outage with a diagnosis", diag)
	}
	found := false
	for _, v := range diag.Diagnosis.PossiblyFailed {
		if v == failNode {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected node %d not among possibly-failed %v", failNode, diag.Diagnosis.PossiblyFailed)
	}
	// And it must agree with the in-process localization.
	local, err := nw.Localize(obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local.Candidates, diag.Diagnosis.Candidates) {
		t.Fatalf("HTTP candidates %v != in-process candidates %v",
			diag.Diagnosis.Candidates, local.Candidates)
	}

	// Metrics expose the ingest and the events.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`placemond_events_total{kind="outage-started"} 1`,
		fmt.Sprintf("placemond_observations_ingested_total %d", len(obs.Failed)),
		"placemond_outage 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A placement job through the worker pool reproduces the in-process
	// greedy exactly (same deterministic algorithm behind both paths).
	jobBody, err := json.Marshal(map[string]any{
		"services": []map[string]any{
			{"name": "svc-0", "clients": services[0].Clients},
			{"name": "svc-1", "clients": services[1].Clients},
		},
		"alpha":     alpha,
		"objective": "distinguishability",
		"algorithm": "greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/placements", "application/json", strings.NewReader(string(jobBody)))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		Hosts           []int   `json:"hosts"`
		Objective       float64 `json:"objective"`
		Coverage        int     `json:"coverage"`
		DurationSeconds float64 `json:"duration_seconds"`
	}
	mustDecode(t, resp, &job)
	if !reflect.DeepEqual(job.Hosts, inProc.Hosts) {
		t.Fatalf("worker-pool hosts %v != in-process hosts %v", job.Hosts, inProc.Hosts)
	}
	if job.Objective != inProc.Objective || job.Coverage != inProc.Coverage {
		t.Fatalf("worker-pool metrics (%v, %d) != in-process (%v, %d)",
			job.Objective, job.Coverage, inProc.Objective, inProc.Coverage)
	}
	if job.DurationSeconds <= 0 {
		t.Errorf("duration_seconds = %v, want > 0", job.DurationSeconds)
	}

	// The lazy (CELF) algorithm through the job API lands on the same
	// deterministic placement.
	lazyBody, err := json.Marshal(map[string]any{
		"services": []map[string]any{
			{"name": "svc-0", "clients": services[0].Clients},
			{"name": "svc-1", "clients": services[1].Clients},
		},
		"alpha":     alpha,
		"objective": "distinguishability",
		"algorithm": "lazy",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/placements", "application/json", strings.NewReader(string(lazyBody)))
	if err != nil {
		t.Fatal(err)
	}
	var lazyJob struct {
		Hosts       []int `json:"hosts"`
		Evaluations int   `json:"evaluations"`
	}
	mustDecode(t, resp, &lazyJob)
	if !reflect.DeepEqual(lazyJob.Hosts, inProc.Hosts) {
		t.Fatalf("lazy job hosts %v != in-process hosts %v", lazyJob.Hosts, inProc.Hosts)
	}
	if lazyJob.Evaluations <= 0 {
		t.Errorf("lazy job evaluations = %d, want > 0", lazyJob.Evaluations)
	}
}

// TestNewServerValidation covers the constructor's rejection paths.
func TestNewServerValidation(t *testing.T) {
	nw, err := placemon.BuildTopology("Abovenet")
	if err != nil {
		t.Fatal(err)
	}
	clients := nw.SuggestedClients()
	services := []placemon.Service{{Name: "s", Clients: clients[:2]}}

	// Host count mismatch.
	doc := placemon.PlacementFile{
		Alpha:    0.5,
		Services: []placemon.ServiceRecord{{Name: "s", Clients: clients[:2]}},
		Hosts:    []int{0, 1},
	}
	if _, err := placemon.NewServer(nw, doc, placemon.ServerConfig{}); err == nil {
		t.Errorf("host/service mismatch accepted")
	}

	// All services unplaced → no connections to monitor.
	doc = placemon.NewPlacementFile("", 0.5, services, []int{-1})
	if _, err := placemon.NewServer(nw, doc, placemon.ServerConfig{}); err == nil {
		t.Errorf("fully unplaced document accepted")
	}

	// Host outside the candidate set at the stored alpha.
	doc = placemon.NewPlacementFile("", 0.0, services, []int{nodeFarFrom(t, nw, clients[:2])})
	if _, err := placemon.NewServer(nw, doc, placemon.ServerConfig{}); err == nil {
		t.Errorf("infeasible host accepted at alpha=0")
	}
}

// nodeFarFrom returns a node that is not QoS-optimal for the client set,
// hence infeasible at alpha = 0.
func nodeFarFrom(t *testing.T, nw *placemon.Network, clients []int) int {
	t.Helper()
	cands, err := nw.CandidateHosts(clients, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]bool{}
	for _, c := range cands {
		in[c] = true
	}
	for v := 0; v < nw.NumNodes(); v++ {
		if !in[v] {
			return v
		}
	}
	t.Fatalf("every node is a candidate at alpha=0")
	return -1
}

func mustDecode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: status %d: %s", resp.Request.URL, resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
