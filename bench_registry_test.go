package placemon_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkRegistryOverhead measures single-tenant request latency on the
// serving hot paths — observation ingest and the no-outage diagnosis read
// — straight through the HTTP handler, with no real socket. The sub-
// benchmark names are stable across the registry refactor so archived
// snapshots diff the seed single-tenant path against the registry-backed
// "default" tenant path with `benchjson -compare`: the acceptance bar is
// ≤10% ns/op overhead on these shared names.
func BenchmarkRegistryOverhead(b *testing.B) {
	srv, _, _, _ := legacyGoldenServer(b)
	defer srv.Close()
	handler := srv.Handler()

	nConns := len(srv.Connections())
	var up []string
	for i := 0; i < nConns; i++ {
		up = append(up, fmt.Sprintf(`{"connection": %d, "up": true}`, i))
	}
	ingestBody := fmt.Sprintf(`{"time": 1, "reports": [%s]}`, strings.Join(up, ","))

	run := func(b *testing.B, method, path, body string) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(method, path, strings.NewReader(body))
			if body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("%s %s: status %d: %s", method, path, rec.Code, rec.Body)
			}
		}
	}

	b.Run("ingest", func(b *testing.B) {
		run(b, http.MethodPost, "/v1/observations", ingestBody)
	})
	b.Run("diagnosis", func(b *testing.B) {
		run(b, http.MethodGet, "/v1/diagnosis", "")
	})
	b.Run("healthz", func(b *testing.B) {
		run(b, http.MethodGet, "/healthz", "")
	})
}
