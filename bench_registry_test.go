package placemon_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchRecorder is a minimal, reusable http.ResponseWriter: unlike
// httptest.NewRecorder-per-iteration it keeps its header map and body
// buffer across requests, so the benchmark measures the handler, not the
// recorder. reset clears state between iterations.
type benchRecorder struct {
	header http.Header
	code   int
	body   []byte
}

func (r *benchRecorder) Header() http.Header { return r.header }
func (r *benchRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}
func (r *benchRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	r.body = append(r.body, b...)
	return len(b), nil
}
func (r *benchRecorder) reset() {
	r.code = 0
	r.body = r.body[:0]
	for k := range r.header {
		delete(r.header, k)
	}
}

// benchBody is a rewindable request body over a fixed string.
type benchBody struct{ strings.Reader }

func (b *benchBody) Close() error { return nil }

// BenchmarkRegistryOverhead measures single-tenant request latency on the
// serving hot paths — observation ingest and the no-outage diagnosis read
// — straight through the HTTP handler, with no real socket. The sub-
// benchmark names are stable across the registry refactor and the
// streaming-ingest rework so archived snapshots diff releases with
// `benchjson -compare`. The request and recorder are built once and
// rewound per iteration (one-time construction is not the code under
// measurement); the handler still runs the full middleware chain.
func BenchmarkRegistryOverhead(b *testing.B) {
	srv, _, _, _ := legacyGoldenServer(b)
	defer srv.Close()
	handler := srv.Handler()

	nConns := len(srv.Connections())
	var up []string
	var upLines []string
	for i := 0; i < nConns; i++ {
		up = append(up, fmt.Sprintf(`{"connection": %d, "up": true}`, i))
		upLines = append(upLines, fmt.Sprintf(`{"connection": %d, "up": true}`, i))
	}
	ingestBody := fmt.Sprintf(`{"time": 1, "reports": [%s]}`, strings.Join(up, ","))
	ndjsonBody := "{\"time\": 1}\n" + strings.Join(upLines, "\n") + "\n"

	run := func(b *testing.B, method, path, body, contentType string) {
		b.Helper()
		b.ReportAllocs()
		req := httptest.NewRequest(method, path, nil)
		var rb benchBody
		if body != "" {
			req.Header.Set("Content-Type", contentType)
			req.Body = &rb
		}
		rec := &benchRecorder{header: make(http.Header, 8)}
		for i := 0; i < b.N; i++ {
			rb.Reset(body)
			rec.reset()
			handler.ServeHTTP(rec, req)
			if rec.code != http.StatusOK {
				b.Fatalf("%s %s: status %d: %s", method, path, rec.code, rec.body)
			}
		}
	}

	b.Run("ingest", func(b *testing.B) {
		run(b, http.MethodPost, "/v1/observations", ingestBody, "application/json")
	})
	b.Run("ingest-stream", func(b *testing.B) {
		run(b, http.MethodPost, "/v1/observations", ndjsonBody, "application/x-ndjson")
	})
	b.Run("diagnosis", func(b *testing.B) {
		run(b, http.MethodGet, "/v1/diagnosis", "", "")
	})
	b.Run("healthz", func(b *testing.B) {
		run(b, http.MethodGet, "/healthz", "", "")
	})
}
