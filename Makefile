# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench fuzz experiments results clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark run per table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Short fuzz session over the edge-list parser.
fuzz:
	$(GO) test -run NONE -fuzz FuzzParse -fuzztime 30s ./internal/graph/

# Regenerate every evaluation artifact (text + CSV) into results/.
experiments:
	$(GO) run ./cmd/experiments -out results | tee results/all.txt

# The final deliverable logs.
results:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt
