# Convenience targets; everything is plain `go` underneath.

GO ?= go
# Extra flags for the benchmark targets, e.g. BENCHFLAGS=-benchtime=1x
# for a quick smoke run.
BENCHFLAGS ?=

.PHONY: all help build test race check chaos cluster-soak crash-smoke bench bench-json bench-smoke bench-compare bench-compare-wal bench-stochastic docs-check fuzz fuzz-smoke experiments paper-runs soak-smoke results serve clean

all: build test

help:
	@echo "Targets:"
	@echo "  build        compile and vet every package"
	@echo "  test         go test ./..."
	@echo "  race         go test -race ./..."
	@echo "  check        vet + full race-detector test run"
	@echo "  chaos        chaos soak: placemond behind the fault injector, race detector on"
	@echo "  cluster-soak 3-node cluster soak: chaos timeline through a non-owner plus a live mid-soak migration (CI)"
	@echo "  crash-smoke  WAL crash-injection matrix: kill writes mid-append/rotate/compact, assert exact recovery (CI)"
	@echo "  bench        one benchmark run per table/figure plus ablations"
	@echo "  bench-json   machine-readable benchmark snapshot (BENCH_<date>.json)"
	@echo "  bench-smoke  single-iteration benchmark compile-and-run gate (CI)"
	@echo "  bench-compare  registry-overhead run gated against the archived seed baseline (CI)"
	@echo "  bench-compare-wal  WAL append/recovery run gated against the archived WAL baseline (CI)"
	@echo "  bench-stochastic  stochastic-frontier smoke gated against the archived frontier snapshot (CI)"
	@echo "  docs-check   documentation lint: godoc coverage, markdown links, flag-name drift (CI)"
	@echo "  fuzz         short fuzz session over the edge-list parser"
	@echo "  fuzz-smoke   ~10s of every fuzz target (CI)"
	@echo "  experiments  regenerate every evaluation artifact into results/"
	@echo "  paper-runs   execute the experiments.json grid into paper_runs/<ts>/ and validate vs results/"
	@echo "  soak-smoke   ≤30s open-loop load against an in-process placemond, gated by slo.json (CI)"
	@echo "  results      archive test + benchmark logs"
	@echo "  serve        compute a placement and run placemond on :8080"
	@echo "  clean        remove archived logs"

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full static + concurrency gate: vet everything, then run every test
# under the race detector (the serving layer, worker pool, and metrics
# registry are exercised concurrently by their tests).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Chaos soak: drive a real placemond through the seeded fault injector
# (drops, duplicates, resets, 5xx flaps, reorders) and require the event
# stream to match a fault-free run exactly. CHAOSFLAGS=-short for the
# one-cycle smoke variant CI uses.
CHAOSFLAGS ?=
chaos:
	$(GO) test -race -run TestChaosSoak -v $(CHAOSFLAGS) .

# Cluster soak: the same seeded chaos timeline driven at a 3-node
# WAL-backed cluster through a deliberately wrong node, with a live
# scenario migration fired mid-soak. The merged redirect-following event
# stream must match a single-node fault-free run exactly, the audit
# splice must pin the source's fence record, and every node's log must
# fsck clean. CHAOSFLAGS=-short for the one-cycle smoke variant CI uses.
cluster-soak:
	$(GO) test -race -run TestClusterSoak -v $(CHAOSFLAGS) .

# WAL crash-injection matrix: the fault-point filesystem kills writes at
# seeded byte offsets mid-append, mid-rotation, and mid-compaction (log
# layer) and mid-serving (HTTP layer); every recovered state must be
# byte-identical to a never-crashed reference, and a retried pre-crash
# batch must replay its original ack.
crash-smoke:
	$(GO) test -race -run 'TestCrashMatrix|TestCrashServerMatrix|TestTorn' -v ./internal/wal/ ./internal/server/

# One benchmark run per table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Single-iteration smoke over a cheap benchmark: proves the benchmark
# harness still compiles and runs without paying for a real measurement.
bench-smoke:
	$(GO) test -run NONE -bench='TableI|RegistryOverhead' -benchtime=1x .

# Multi-tenant serving overhead, gated twice from one measurement run:
# ns/op against the archived pre-refactor seed baseline (>10% fails) and
# allocs/op against the zero-alloc streaming snapshot (>10% fails), so
# neither latency nor the allocation work can silently backslide. ns/op
# is not gated against the streaming snapshot — wall-clock swings too
# much run-to-run on shared CPUs for a freshly-tightened bound — but
# allocs/op is deterministic, so there the tight gate holds. The bare
# snapshot names resolve via benchjson's archive fallback to
# results/bench/, where the BENCH_*.json snapshots live.
bench-compare:
	$(GO) test -run NONE -bench=RegistryOverhead -benchmem -benchtime=2000x . > /tmp/bench_registry.txt
	$(GO) run ./cmd/benchjson -compare BENCH_2026-08-06_registry_seed.json -fail-over 10 < /tmp/bench_registry.txt
	$(GO) run ./cmd/benchjson -compare BENCH_2026-08-08_streaming.json -fail-allocs-over 10 < /tmp/bench_registry.txt

# Stochastic-frontier smoke: the small generated hierarchy (fixed seed)
# through exact greedy, every ε row, and the warm-start re-placement
# path, one iteration each — proof the frontier harness still compiles
# and the sampled engine still terminates, then a ns/op gate against
# the archived frontier snapshot. The margin is wide (200%) because a
# single iteration on a shared runner is noisy; the deterministic
# counters (evaluations/op, value-ratio, eval-saving) are what the
# archived snapshot is really for. The 10k-node scale is excluded here:
# each of its instance constructions is a tens-of-seconds measurement,
# archived in BENCH_2026-08-08_stochastic.json by a full run, not
# re-paid per push.
bench-stochastic:
	$(GO) test -run NONE -bench='StochasticFrontier/small' -benchtime=1x . > /tmp/bench_stochastic.txt
	$(GO) run ./cmd/benchjson -compare BENCH_2026-08-08_stochastic.json -fail-over 200 < /tmp/bench_stochastic.txt

# WAL hot paths (append fsync cost per sync mode, boot recovery) gated
# against the snapshot archived when the log landed. fsync-bound ns/op
# swings ±2x run-to-run on shared disks at small iteration counts, so
# the gate averages over 1000 iterations and allows a 100% margin: it
# catches order-of-magnitude regressions (an accidental fsync per record
# in group mode, a quadratic recovery scan), not microsecond drift.
bench-compare-wal:
	$(GO) test -run NONE -bench='WALAppend|Recovery' -benchmem -benchtime=1000x ./internal/wal/ | $(GO) run ./cmd/benchjson -compare BENCH_2026-08-08_wal.json -fail-over 100

# Documentation lint (cmd/docscheck): every package and exported
# package-level identifier has a godoc comment, every relative link in
# the user-facing markdown resolves, and every `-flag` the docs mention
# is actually declared by a cmd/ binary.
docs-check:
	$(GO) run ./cmd/docscheck

# Machine-readable benchmark snapshot for the perf trajectory: runs the
# root benchmarks and archives them under results/bench/.
bench-json:
	$(GO) test -run NONE -bench=. -benchmem $(BENCHFLAGS) . | $(GO) run ./cmd/benchjson > results/bench/BENCH_$(shell date +%F).json

# Compute a placement and serve it with the monitoring daemon.
serve:
	$(GO) run ./cmd/placemon place -topology Tiscali -services 3 -alpha 0.6 -o /tmp/placement.json
	$(GO) run ./cmd/placemond -placement /tmp/placement.json -addr :8080

# Short fuzz session over the edge-list parser.
fuzz:
	$(GO) test -run NONE -fuzz FuzzParse -fuzztime 30s ./internal/graph/

# Smoke every fuzz target briefly: enough to catch a freshly broken
# invariant or panic without a dedicated fuzz farm. FUZZTIME=5s for an
# even quicker local pass.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run NONE -fuzz FuzzObservations -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run NONE -fuzz FuzzWALDecode -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -run NONE -fuzz FuzzMembershipParse -fuzztime $(FUZZTIME) ./internal/cluster/
	$(GO) test -run NONE -fuzz FuzzGreedyLazyEquivalence -fuzztime $(FUZZTIME) ./internal/placement/
	$(GO) test -run NONE -fuzz FuzzLoadPlacement -fuzztime $(FUZZTIME) .

# Regenerate every evaluation artifact (text + CSV) into results/.
experiments:
	$(GO) run ./cmd/experiments -out results | tee results/all.txt

# Execute the declared experiment grid (experiments.json: placement runs
# plus loadgen profiles) into a timestamped paper_runs/<ts>/ tree and
# validate every regenerated CSV against the goldens in results/.
paper-runs:
	$(GO) run ./cmd/experiments -grid experiments.json -runs-dir paper_runs -goldens results

# Open-loop load smoke: ≤30s of sustained traffic against an in-process
# placemond, reconciled against the server's own histograms and gated by
# the repo's declared SLO (slo.json). Non-zero exit on violation.
soak-smoke:
	$(GO) run ./cmd/placemon loadgen -rps 150 -duration 20s -scenarios 4 -slo slo.json

# The final deliverable logs.
results:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt
