package placemon

import (
	"testing"
)

func TestSweepDefaults(t *testing.T) {
	nw := fig1Network(t)
	points, err := nw.Sweep(fig1Services(3), SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 11 {
		t.Fatalf("points = %d, want 11", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Alpha <= points[i-1].Alpha {
			t.Fatal("points must be ascending in α")
		}
	}
	// Each placement honors its own slack.
	for _, p := range points {
		if p.WorstRelativeDistance > p.Alpha+1e-9 {
			t.Fatalf("QoS violated at α=%v: d̄=%v", p.Alpha, p.WorstRelativeDistance)
		}
	}
}

func TestSweepQoSAlgorithmIsFlat(t *testing.T) {
	nw := fig1Network(t)
	points, err := nw.Sweep(fig1Services(3), SweepConfig{
		Alphas:    []float64{0, 0.5, 1},
		Algorithm: AlgorithmQoS,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points[1:] {
		if p.Distinguishable != points[0].Distinguishable {
			t.Fatalf("QoS series should be flat in α: %+v vs %+v", p, points[0])
		}
	}
}

func TestSweepUnsortedAlphas(t *testing.T) {
	nw := fig1Network(t)
	points, err := nw.Sweep(fig1Services(2), SweepConfig{Alphas: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Alpha != 0 || points[1].Alpha != 1 {
		t.Fatalf("points not sorted: %v", points)
	}
}

func TestSweepDedupesAlphas(t *testing.T) {
	// Repeated slacks used to produce duplicate points (and waste a full
	// placement run each); now the sweep yields one point per distinct α.
	nw := fig1Network(t)
	points, err := nw.Sweep(fig1Services(2), SweepConfig{
		Alphas: []float64{0.5, 0.5, 0, 0, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2 (one per distinct α): %+v", len(points), points)
	}
	if points[0].Alpha != 0 || points[1].Alpha != 0.5 {
		t.Fatalf("alphas = %g, %g, want 0, 0.5", points[0].Alpha, points[1].Alpha)
	}
}

func TestSweepValidation(t *testing.T) {
	nw := fig1Network(t)
	if _, err := nw.Sweep(fig1Services(1), SweepConfig{Alphas: []float64{-0.1}}); err == nil {
		t.Fatal("negative alpha should error")
	}
	if _, err := nw.Sweep(fig1Services(1), SweepConfig{Alphas: []float64{1.5}}); err == nil {
		t.Fatal("alpha > 1 should error")
	}
	if _, err := nw.Sweep(nil, SweepConfig{}); err == nil {
		t.Fatal("no services should error")
	}
}

func TestSweepGreedyDominatesItselfAtWiderSlack(t *testing.T) {
	// Greedy is not guaranteed monotone in α point-by-point, but the
	// candidate sets grow, so the final α=1 value should be at least the
	// α=0 value for the distinguishability objective on this symmetric
	// instance.
	nw := fig1Network(t)
	points, err := nw.Sweep(fig1Services(4), SweepConfig{Alphas: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if points[1].Distinguishable < points[0].Distinguishable {
		t.Fatalf("α=1 distinguishability %d below α=0 %d",
			points[1].Distinguishable, points[0].Distinguishable)
	}
}
