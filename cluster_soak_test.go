package placemon_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	placemon "repro"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/wal"
	"repro/placemonclient"
)

// TestClusterSoak is the acceptance run for cluster mode: the same
// deterministic observation timeline as the single-node chaos soak is
// driven at a 3-node WAL-backed cluster — deliberately through a
// non-owner node, over a seeded fault-injecting transport — with a live
// migration to a third node fired mid-soak. The client follows 307s and
// learns owner hints; dedup absorbs the injected duplicates and retries.
// The merged event stream must be identical to a fault-free single-node
// run, the relocated scenario's audit chain must verify with its splice
// pinned to the source's fence, and every node's log must fsck clean
// after a graceful close.
func TestClusterSoak(t *testing.T) {
	cycles := 2
	if testing.Short() {
		cycles = 1
	}
	sc := buildChaosScenario(t, cycles)
	specRaw, err := json.Marshal(placemon.ScenarioSpec{Placement: sc.doc})
	if err != nil {
		t.Fatal(err)
	}
	const scenID = "soak"
	ctx := context.Background()

	// Fault-free single-node reference: the byte-identity baseline.
	refSrv, err := placemon.NewScenarioServer(placemon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	ref := httptest.NewServer(refSrv.Handler())
	defer ref.Close()
	refClient := retryingClient(t, ref.URL, nil, 1)
	if _, err := refClient.CreateScenario(ctx, scenID, specRaw); err != nil {
		t.Fatal(err)
	}
	refScen := refClient.Scenario(scenID)
	var want []placemonclient.Event
	for i, b := range sc.batches {
		res, err := refScen.ReportObservations(ctx, b)
		if err != nil {
			t.Fatalf("reference batch %d: %v", i, err)
		}
		want = append(want, res.Events...)
	}
	if len(want) == 0 {
		t.Fatalf("reference run produced no events; scenario is broken")
	}

	// The 3-node cluster: listeners first (the shared -peers list needs
	// the addresses), then one WAL-backed scenario daemon per member.
	const n = 3
	walRoot := t.TempDir()
	lns := make([]net.Listener, n)
	members := make([]cluster.Member, n)
	dirs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		members[i] = cluster.Member{ID: fmt.Sprintf("node-%d", i), URL: "http://" + ln.Addr().String()}
		dirs[i] = filepath.Join(walRoot, members[i].ID)
	}
	peers := cluster.FormatMembers(members)
	servers := make([]*placemon.Server, n)
	fronts := make([]*httptest.Server, n)
	for i := range servers {
		srv, err := placemon.NewScenarioServer(placemon.ServerConfig{
			WALDir: dirs[i],
			NodeID: members[i].ID,
			Peers:  peers,
		})
		if err != nil {
			t.Fatalf("boot %s: %v", members[i].ID, err)
		}
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		servers[i], fronts[i] = srv, ts
		defer srv.Close()
		defer ts.Close()
	}

	ms, err := cluster.NewFromMembers(members[0].ID, members)
	if err != nil {
		t.Fatal(err)
	}
	ownerIdx := 0
	for i := range members {
		if ms.Owner(scenID).ID == members[i].ID {
			ownerIdx = i
		}
	}
	entryIdx := (ownerIdx + 1) % n  // a non-owner: every call starts routed
	targetIdx := (ownerIdx + 2) % n // the migration destination

	// One retrying client, aimed at the non-owner, behind the injector.
	inj, err := faultinject.New(chaosPolicy(2718))
	if err != nil {
		t.Fatal(err)
	}
	client := retryingClient(t, fronts[entryIdx].URL, inj, 12)
	if _, err := client.CreateScenario(ctx, scenID, specRaw); err != nil {
		t.Fatalf("create through the non-owner: %v", err)
	}
	scen := client.Scenario(scenID)

	half := len(sc.batches) / 2
	var got []placemonclient.Event
	for i, b := range sc.batches[:half] {
		res, err := scen.ReportObservations(ctx, b)
		if err != nil {
			t.Fatalf("batch %d lost before the migration: %v", i, err)
		}
		got = append(got, res.Events...)
	}

	// Mid-soak live migration off the ring owner. A lost 200 makes the
	// retry find the scenario already moved (400 from the new host); the
	// move itself still happened exactly once.
	mig, err := scen.Migrate(ctx, members[targetIdx].ID)
	if err != nil {
		var apiErr *placemonclient.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Fatalf("mid-soak migration: %v", err)
		}
		t.Logf("migration ack lost to the injector; continuing against the moved scenario")
	} else if mig.From != members[ownerIdx].ID || mig.To != members[targetIdx].ID {
		t.Fatalf("migration = %s -> %s, want %s -> %s", mig.From, mig.To,
			members[ownerIdx].ID, members[targetIdx].ID)
	}

	for i, b := range sc.batches[half:] {
		res, err := scen.ReportObservations(ctx, b)
		if err != nil {
			t.Fatalf("batch %d lost after the migration: %v", half+i, err)
		}
		got = append(got, res.Events...)
	}

	// The tentpole invariant: routing hops, the live migration, and the
	// injected faults must all be invisible in the event stream.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cluster event stream diverged from the single-node fault-free run:\n got %d events: %+v\nwant %d events: %+v",
			len(got), got, len(want), want)
	}
	if inj.Total() == 0 {
		t.Fatalf("no faults injected; the soak proved nothing")
	}
	t.Logf("injected faults: %v", inj.Counts())

	// The timeline ends mid-outage; the moved scenario must localize the
	// failed node from wherever it now lives.
	diag, err := scen.Diagnosis(ctx)
	if err != nil {
		t.Fatalf("diagnosis after migration: %v", err)
	}
	if !diag.InOutage || diag.Diagnosis == nil {
		t.Fatalf("no outage diagnosis at end of timeline: %+v", diag)
	}
	found := false
	for _, cand := range diag.Diagnosis.Candidates {
		for _, node := range cand {
			if node == sc.lastFail {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("failed node %d not among candidates %v", sc.lastFail, diag.Diagnosis.Candidates)
	}

	// The audit chain on the new owner verifies end to end, and its
	// splice pins the handoff to the source node's fence record.
	audit, err := scen.Audit(ctx, 0)
	if err != nil {
		t.Fatalf("audit after migration: %v", err)
	}
	if !audit.Chain.Verified {
		t.Fatalf("target audit chain failed verification: %+v", audit.Chain)
	}
	if audit.TotalEvents != len(want) {
		t.Fatalf("audit total_events = %d, want %d — events lost across the handoff", audit.TotalEvents, len(want))
	}
	if audit.Splice == nil || audit.Splice.SourceNode != members[ownerIdx].ID || audit.Splice.SourceHeadSeq == 0 {
		t.Fatalf("audit splice = %+v, want one pinned to %s", audit.Splice, members[ownerIdx].ID)
	}
	if mig != nil && (audit.Splice.SourceHeadSeq != mig.HeadSeq || audit.Splice.SourceHeadHash != mig.HeadHash) {
		t.Fatalf("audit splice (%d, %s) does not match the migration fence (%d, %s)",
			audit.Splice.SourceHeadSeq, audit.Splice.SourceHeadHash, mig.HeadSeq, mig.HeadHash)
	}

	// Every node's incremental state must still match a from-scratch
	// recompute, and every log must fsck clean after a graceful close.
	for i, srv := range servers {
		if err := srv.VerifyIncremental(); err != nil {
			t.Fatalf("%s incremental state diverged: %v", members[i].ID, err)
		}
	}
	for i := range servers {
		fronts[i].Close()
		if err := servers[i].Close(); err != nil {
			t.Fatalf("close %s: %v", members[i].ID, err)
		}
	}
	for i, dir := range dirs {
		rep, err := wal.Check(dir, false)
		if err != nil {
			t.Fatalf("fsck %s: %v", members[i].ID, err)
		}
		if rep.Torn {
			t.Fatalf("%s log torn after clean close: %+v", members[i].ID, rep)
		}
	}
}
