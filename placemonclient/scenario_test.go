package placemonclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestScenarioClientRoutes: every scenario-scoped call hits the
// /v1/scenarios/{id}/... route of its scenario, with the ID escaped.
func TestScenarioClientRoutes(t *testing.T) {
	var paths []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		paths = append(paths, r.Method+" "+r.URL.Path)
		json.NewEncoder(w).Encode(map[string]any{"events": []any{}})
	}))
	defer ts.Close()
	sc := newTestClient(t, ts.URL, nil).Scenario("edge-1")

	ctx := context.Background()
	if _, err := sc.ReportObservations(ctx, ObservationBatch{Reports: []Report{{Connection: 0, Up: true}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Diagnosis(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Place(ctx, PlacementRequest{Services: []ServiceSpec{{Clients: []int{0}}}, Alpha: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Info(ctx); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"POST /v1/scenarios/edge-1/observations",
		"GET /v1/scenarios/edge-1/diagnosis",
		"POST /v1/scenarios/edge-1/placements",
		"GET /v1/scenarios/edge-1",
	}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("call %d hit %q, want %q", i, paths[i], want[i])
		}
	}
}

// TestScenarioNotFoundTyped: a 404 on a scenario route surfaces as
// ErrScenarioNotFound with the APIError still in the chain.
func TestScenarioNotFoundTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown scenario"})
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, nil)

	_, err := c.Scenario("ghost").Diagnosis(context.Background())
	if !errors.Is(err, ErrScenarioNotFound) {
		t.Fatalf("error = %v, want ErrScenarioNotFound", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("APIError lost from chain: %v", err)
	}
	if err := c.DeleteScenario(context.Background(), "ghost"); !errors.Is(err, ErrScenarioNotFound) {
		t.Fatalf("delete error = %v, want ErrScenarioNotFound", err)
	}
}

// TestScenarioAdminCalls: create sends the raw document via PUT, list
// decodes the envelope.
func TestScenarioAdminCalls(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPut && r.URL.Path == "/v1/scenarios/fresh":
			var doc map[string]any
			if err := json.NewDecoder(r.Body).Decode(&doc); err != nil || doc["nodes"] != float64(5) {
				t.Errorf("create body = %v (%v)", doc, err)
			}
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(ScenarioInfo{ID: "fresh", Connections: 2, Persistent: true})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/scenarios":
			json.NewEncoder(w).Encode(map[string]any{"scenarios": []ScenarioInfo{
				{ID: "default"}, {ID: "fresh", Persistent: true},
			}})
		default:
			t.Errorf("unexpected call %s %s", r.Method, r.URL.Path)
			w.WriteHeader(http.StatusTeapot)
		}
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, nil)

	info, err := c.CreateScenario(context.Background(), "fresh", json.RawMessage(`{"nodes": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "fresh" || info.Connections != 2 || !info.Persistent {
		t.Fatalf("create info = %+v", info)
	}
	list, err := c.ListScenarios(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != "default" || list[1].ID != "fresh" {
		t.Fatalf("list = %+v", list)
	}
}
