package placemonclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestScenarioClientRoutes: every scenario-scoped call hits the
// /v1/scenarios/{id}/... route of its scenario, with the ID escaped.
func TestScenarioClientRoutes(t *testing.T) {
	var paths []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		paths = append(paths, r.Method+" "+r.URL.Path)
		json.NewEncoder(w).Encode(map[string]any{"events": []any{}})
	}))
	defer ts.Close()
	sc := newTestClient(t, ts.URL, nil).Scenario("edge-1")

	ctx := context.Background()
	if _, err := sc.ReportObservations(ctx, ObservationBatch{Reports: []Report{{Connection: 0, Up: true}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Diagnosis(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Place(ctx, PlacementRequest{Services: []ServiceSpec{{Clients: []int{0}}}, Alpha: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Info(ctx); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"POST /v1/scenarios/edge-1/observations",
		"GET /v1/scenarios/edge-1/diagnosis",
		"POST /v1/scenarios/edge-1/placements",
		"GET /v1/scenarios/edge-1",
	}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("call %d hit %q, want %q", i, paths[i], want[i])
		}
	}
}

// TestScenarioNotFoundTyped: a 404 on a scenario route surfaces as
// ErrScenarioNotFound with the APIError still in the chain.
func TestScenarioNotFoundTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown scenario"})
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, nil)

	_, err := c.Scenario("ghost").Diagnosis(context.Background())
	if !errors.Is(err, ErrScenarioNotFound) {
		t.Fatalf("error = %v, want ErrScenarioNotFound", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("APIError lost from chain: %v", err)
	}
	if err := c.DeleteScenario(context.Background(), "ghost"); !errors.Is(err, ErrScenarioNotFound) {
		t.Fatalf("delete error = %v, want ErrScenarioNotFound", err)
	}
}

// TestScenarioAdminCalls: create sends the raw document via PUT, list
// decodes the envelope.
func TestScenarioAdminCalls(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPut && r.URL.Path == "/v1/scenarios/fresh":
			var doc map[string]any
			if err := json.NewDecoder(r.Body).Decode(&doc); err != nil || doc["nodes"] != float64(5) {
				t.Errorf("create body = %v (%v)", doc, err)
			}
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(ScenarioInfo{ID: "fresh", Connections: 2, Persistent: true})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/scenarios":
			json.NewEncoder(w).Encode(map[string]any{"scenarios": []ScenarioInfo{
				{ID: "default"}, {ID: "fresh", Persistent: true},
			}})
		default:
			t.Errorf("unexpected call %s %s", r.Method, r.URL.Path)
			w.WriteHeader(http.StatusTeapot)
		}
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, nil)

	info, err := c.CreateScenario(context.Background(), "fresh", json.RawMessage(`{"nodes": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "fresh" || info.Connections != 2 || !info.Persistent {
		t.Fatalf("create info = %+v", info)
	}
	list, err := c.ListScenarios(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != "default" || list[1].ID != "fresh" {
		t.Fatalf("list = %+v", list)
	}
}

// TestScenarioAuditRoute: Audit hits /v1/scenarios/{id}/audit with the
// limit query, decodes the ledger, and surfaces a non-WAL daemon's 501
// as an APIError.
func TestScenarioAuditRoute(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Path != "/v1/scenarios/alpha/audit" {
			t.Errorf("unexpected call %s %s", r.Method, r.URL.Path)
			w.WriteHeader(http.StatusTeapot)
			return
		}
		if got := r.URL.Query().Get("limit"); got != "5" {
			t.Errorf("limit query = %q, want 5", got)
		}
		json.NewEncoder(w).Encode(AuditReport{
			Scenario:    "alpha",
			TotalEvents: 2,
			Events: []AuditEvent{
				{Seq: 7, Hash: "aa11", Time: 1.5, Kind: "diagnosis"},
				{Seq: 9, Hash: "bb22", Time: 2.5, Kind: "diagnosis"},
			},
			Chain: AuditChain{Verified: true, HeadSeq: 9, HeadHash: "bb22", Records: 9, Segments: 1},
		})
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	rep, err := c.Scenario("alpha").Audit(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "alpha" || rep.TotalEvents != 2 || len(rep.Events) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Events[1].Seq != 9 || rep.Events[1].Hash != "bb22" {
		t.Fatalf("events = %+v", rep.Events)
	}
	if !rep.Chain.Verified || rep.Chain.HeadSeq != 9 {
		t.Fatalf("chain = %+v", rep.Chain)
	}

	notWAL := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"audit requires -wal-dir"}`, http.StatusNotImplemented)
	}))
	defer notWAL.Close()
	c2 := newTestClient(t, notWAL.URL, nil)
	_, err = c2.Scenario("alpha").Audit(context.Background(), 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotImplemented {
		t.Fatalf("want 501 APIError, got %v", err)
	}
}
