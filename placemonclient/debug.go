package placemonclient

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/trace"
)

// This file covers the daemon's observability surface: the request-trace
// ring and the Prometheus metrics endpoint. Load and soak harnesses use
// these to reconcile their client-side view with the server's.

// TraceQuery filters GET /debug/traces. The zero value fetches the whole
// ring.
type TraceQuery struct {
	// Limit caps the answer at the newest N traces (0 = no cap).
	Limit int
	// Scenario keeps only one scenario's requests (empty = all).
	Scenario string
}

// Traces fetches the daemon's recent-request ring, newest first. The
// records are trace.Record as the server filed them.
func (c *Client) Traces(ctx context.Context, q TraceQuery) ([]trace.Record, error) {
	path := "/debug/traces"
	vals := url.Values{}
	if q.Limit > 0 {
		vals.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Scenario != "" {
		vals.Set("scenario", q.Scenario)
	}
	if enc := vals.Encode(); enc != "" {
		path += "?" + enc
	}
	var out struct {
		Traces []trace.Record `json:"traces"`
	}
	if _, err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// MetricsText fetches GET /metrics verbatim (Prometheus text exposition).
// Unlike the API methods this is a single unretried delivery — a metrics
// scrape is periodic anyway, and retrying one would skew the very
// counters being read.
func (c *Client) MetricsText(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base.JoinPath("/metrics").String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("placemonclient: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("placemonclient: GET /metrics: %w", apiError(resp))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("placemonclient: reading /metrics: %w", err)
	}
	return body, nil
}
