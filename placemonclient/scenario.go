package placemonclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"

	"repro/internal/trace"
)

// ErrScenarioNotFound means the addressed scenario does not exist on the
// server (HTTP 404 on a scenario-scoped route). Scenario-scoped calls
// and DeleteScenario wrap it, so callers can errors.Is instead of
// inspecting APIError statuses.
var ErrScenarioNotFound = errors.New("placemonclient: scenario not found")

// ScenarioInfo is one scenario's status row, as served by
// GET /v1/scenarios and GET /v1/scenarios/{id}.
type ScenarioInfo struct {
	ID          string `json:"id"`
	Connections int    `json:"connections"`
	InOutage    bool   `json:"in_outage"`
	Persistent  bool   `json:"persistent"`
}

// ScenarioClient addresses one scenario of a multi-tenant placemond: the
// same calls as Client, routed to /v1/scenarios/{id}/... and sharing the
// parent's retry loop, circuit breaker, and metrics. Create with
// Client.Scenario; safe for concurrent use.
type ScenarioClient struct {
	c      *Client
	id     string
	prefix string
}

// Scenario returns a client scoped to the named scenario. The ID is not
// checked locally; an unknown one surfaces as ErrScenarioNotFound on the
// first call.
func (c *Client) Scenario(id string) *ScenarioClient {
	return &ScenarioClient{c: c, id: id, prefix: "/v1/scenarios/" + url.PathEscape(id)}
}

// ID returns the scenario this client addresses.
func (sc *ScenarioClient) ID() string { return sc.id }

// scenarioErr converts a 404 APIError into an ErrScenarioNotFound chain
// (both sentinels stay errors.Is/As-reachable); other errors pass through.
func scenarioErr(id string, err error) error {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
		return fmt.Errorf("%w: %w: %q", err, ErrScenarioNotFound, id)
	}
	return err
}

// ReportObservations ingests one batch into the scenario; semantics as
// Client.ReportObservations (idempotency key, replay detection).
func (sc *ScenarioClient) ReportObservations(ctx context.Context, batch ObservationBatch) (*IngestResult, error) {
	if len(batch.Reports) == 0 {
		return nil, fmt.Errorf("placemonclient: empty observation batch")
	}
	if batch.BatchID == "" {
		batch.BatchID = newBatchID()
	}
	var out struct {
		Events []Event `json:"events"`
	}
	hdr, err := sc.c.do(ctx, http.MethodPost, sc.prefix+"/observations", batch, &out)
	if err != nil {
		return nil, scenarioErr(sc.id, err)
	}
	return &IngestResult{
		BatchID:  batch.BatchID,
		Events:   out.Events,
		Replayed: hdr.Get("Placemond-Replayed") == "true",
		TraceID:  hdr.Get(trace.Header),
	}, nil
}

// Diagnosis fetches the scenario's rolling diagnosis.
func (sc *ScenarioClient) Diagnosis(ctx context.Context) (*DiagnosisResponse, error) {
	var out DiagnosisResponse
	if _, err := sc.c.do(ctx, http.MethodGet, sc.prefix+"/diagnosis", nil, &out); err != nil {
		return nil, scenarioErr(sc.id, err)
	}
	return &out, nil
}

// Place runs one placement job on the scenario's network, charged
// against its per-scenario job quota.
func (sc *ScenarioClient) Place(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
	var out PlacementResult
	if _, err := sc.c.do(ctx, http.MethodPost, sc.prefix+"/placements", req, &out); err != nil {
		return nil, scenarioErr(sc.id, err)
	}
	return &out, nil
}

// Info fetches the scenario's status row.
func (sc *ScenarioClient) Info(ctx context.Context) (*ScenarioInfo, error) {
	var out ScenarioInfo
	if _, err := sc.c.do(ctx, http.MethodGet, sc.prefix, nil, &out); err != nil {
		return nil, scenarioErr(sc.id, err)
	}
	return &out, nil
}

// NetworkChange is the body of PUT /v1/scenarios/{id}/network: a
// replacement network as either a built-in topology name or an inline
// node count plus undirected edge list (the same forms a scenario
// document carries).
type NetworkChange struct {
	Topology string   `json:"topology,omitempty"`
	Nodes    int      `json:"nodes,omitempty"`
	Edges    [][2]int `json:"edges,omitempty"`
}

// ReplaceNetwork replaces the scenario's network in place: services are
// re-placed on the new network server-side (warm-started from the
// previous revision) and monitoring restarts against the new paths,
// while the scenario keeps its ID, dedup window, and audit ledger.
// Answers the refreshed status row; a scenario mid-drain or mid-update
// surfaces as a 409 APIError.
func (sc *ScenarioClient) ReplaceNetwork(ctx context.Context, change NetworkChange) (*ScenarioInfo, error) {
	var out ScenarioInfo
	if _, err := sc.c.do(ctx, http.MethodPut, sc.prefix+"/network", change, &out); err != nil {
		return nil, scenarioErr(sc.id, err)
	}
	return &out, nil
}

// AuditEvent is one row of a scenario's diagnosis audit ledger: the
// emitted event pinned to its write-ahead-log record (sequence number
// and tamper-evident chain hash).
type AuditEvent struct {
	Seq       uint64     `json:"seq"`
	Hash      string     `json:"hash"`
	Time      float64    `json:"time"`
	Kind      string     `json:"kind"`
	Diagnosis *Diagnosis `json:"diagnosis,omitempty"`
}

// AuditChain is the server's fresh verification walk of its log: when
// Verified is false, Error says what broke and where.
type AuditChain struct {
	Verified    bool   `json:"verified"`
	HeadSeq     uint64 `json:"head_seq"`
	HeadHash    string `json:"head_hash"`
	Records     int    `json:"records"`
	Segments    int    `json:"segments"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	Torn        bool   `json:"torn,omitempty"`
	Error       string `json:"error,omitempty"`
}

// AuditSplice records where a migrated scenario's audit chain continues
// from: the source node and the sequence/hash of the migrate-out fence
// in the source's log. Present only on scenarios adopted from a peer.
type AuditSplice struct {
	SourceNode     string `json:"source_node"`
	SourceHeadSeq  uint64 `json:"source_head_seq,omitempty"`
	SourceHeadHash string `json:"source_head_hash,omitempty"`
}

// AuditReport is GET /v1/scenarios/{id}/audit: the retained diagnosis
// events plus the chain-verification block. Splice, when set, anchors
// this node's chain to the source node's log for a migrated scenario.
type AuditReport struct {
	Scenario    string       `json:"scenario"`
	TotalEvents int          `json:"total_events"`
	Events      []AuditEvent `json:"events"`
	Chain       AuditChain   `json:"chain"`
	Splice      *AuditSplice `json:"splice,omitempty"`
}

// Audit fetches the scenario's hash-chained diagnosis audit ledger.
// limit > 0 caps the returned events to the newest limit; 0 returns the
// whole retained tail. Requires a WAL-backed daemon (-wal-dir); others
// answer 501, surfaced as an APIError.
func (sc *ScenarioClient) Audit(ctx context.Context, limit int) (*AuditReport, error) {
	path := sc.prefix + "/audit"
	if limit > 0 {
		path += fmt.Sprintf("?limit=%d", limit)
	}
	var out AuditReport
	if _, err := sc.c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, scenarioErr(sc.id, err)
	}
	return &out, nil
}

// MigrateResult is POST /v1/scenarios/{id}/migrate: the handoff record
// for a scenario moved to another cluster node. HeadSeq/HeadHash name
// the migrate-out fence in the source node's WAL — the splice anchor the
// target's audit chain verifiably continues from.
type MigrateResult struct {
	Scenario        string  `json:"scenario"`
	From            string  `json:"from"`
	To              string  `json:"to"`
	HeadSeq         uint64  `json:"head_seq"`
	HeadHash        string  `json:"head_hash"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// Migrate moves the scenario to the named cluster node: the source
// fences its WAL, transfers a snapshot, and thereafter answers 307 to
// the target (which this client follows transparently). Requires a
// cluster-mode daemon; single-node daemons answer 501. A scenario
// mid-drain or already migrating surfaces as a 409 APIError.
func (sc *ScenarioClient) Migrate(ctx context.Context, target string) (*MigrateResult, error) {
	req := struct {
		Target string `json:"target"`
	}{Target: target}
	var out MigrateResult
	if _, err := sc.c.do(ctx, http.MethodPost, sc.prefix+"/migrate", req, &out); err != nil {
		return nil, scenarioErr(sc.id, err)
	}
	return &out, nil
}

// --- scenario administration on the parent client ---

// CreateScenario registers a scenario from its JSON document (the
// placemon.ScenarioSpec form) under the given ID. The call is idempotent
// to retry in the HTTP sense only — a genuine duplicate answers 409,
// surfaced as an APIError.
func (c *Client) CreateScenario(ctx context.Context, id string, spec json.RawMessage) (*ScenarioInfo, error) {
	var out ScenarioInfo
	if _, err := c.do(ctx, http.MethodPut, "/v1/scenarios/"+url.PathEscape(id), spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteScenario drains and removes a scenario; ErrScenarioNotFound if
// it does not exist.
func (c *Client) DeleteScenario(ctx context.Context, id string) error {
	if _, err := c.do(ctx, http.MethodDelete, "/v1/scenarios/"+url.PathEscape(id), nil, nil); err != nil {
		return scenarioErr(id, err)
	}
	return nil
}

// ListScenarios fetches every hosted scenario's status row, sorted by ID.
func (c *Client) ListScenarios(ctx context.Context) ([]ScenarioInfo, error) {
	var out struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}
	if _, err := c.do(ctx, http.MethodGet, "/v1/scenarios", nil, &out); err != nil {
		return nil, err
	}
	return out.Scenarios, nil
}
