package placemonclient

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// breakerState is the classic three-state circuit breaker automaton.
type breakerState int

const (
	breakerClosed   breakerState = iota // normal operation
	breakerOpen                         // failing fast, waiting out the cooldown
	breakerHalfOpen                     // one probe in flight decides reopen vs close
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker fails fast once the server looks down: `threshold` consecutive
// retryable failures open it, every call is rejected for `cooldown`, then
// exactly one probe is let through (half-open) — its outcome either closes
// the breaker or re-opens it for another cooldown. A 4xx counts as a
// success for breaker purposes: the server answered, it just disliked the
// request.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive, while closed
	openedAt time.Time // when the breaker last opened

	stateGauge *metrics.Gauge   // 0 closed, 1 open, 0.5 half-open
	rejected   *metrics.Counter // calls refused while open
	opened     *metrics.Counter // closed/half-open → open transitions
}

func newBreaker(threshold int, cooldown time.Duration, reg *metrics.Registry) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		stateGauge: reg.Gauge("placemonclient_breaker_state",
			"Circuit breaker state: 0 closed, 0.5 half-open, 1 open."),
		rejected: reg.Counter("placemonclient_breaker_rejected_total",
			"Calls refused because the circuit breaker was open."),
		opened: reg.Counter("placemonclient_breaker_opened_total",
			"Transitions into the open state."),
	}
}

// allow reports whether a call may proceed. While open it fails fast
// until the cooldown elapses, then admits a single half-open probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.setState(breakerHalfOpen)
			return true
		}
		b.rejected.Inc()
		return false
	case breakerHalfOpen:
		// A probe is already in flight; don't pile on.
		b.rejected.Inc()
		return false
	}
	return false
}

// success records a call the server answered sanely.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != breakerClosed {
		b.setState(breakerClosed)
	}
}

// failure records a retryable failure (transport error, 429, or 5xx).
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.openedAt = b.now()
		b.setState(breakerOpen)
		b.opened.Inc()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.setState(breakerOpen)
			b.opened.Inc()
		}
	}
}

// setState updates the automaton and its gauge; callers hold b.mu.
func (b *breaker) setState(s breakerState) {
	b.state = s
	switch s {
	case breakerClosed:
		b.failures = 0
		b.stateGauge.Set(0)
	case breakerHalfOpen:
		b.stateGauge.Set(0.5)
	case breakerOpen:
		b.stateGauge.Set(1)
	}
}

// currentState returns the state for tests and error messages.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
