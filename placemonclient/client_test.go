package placemonclient

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestClient builds a fast deterministic client against url.
func newTestClient(t *testing.T, url string, mutate func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL:           url,
		MaxAttempts:       4,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        4 * time.Millisecond,
		PerAttemptTimeout: 2 * time.Second,
		BreakerThreshold:  -1, // off unless a test turns it on
		Seed:              1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatalf("empty BaseURL accepted")
	}
	if _, err := New(Config{BaseURL: "not a url at all\x7f"}); err == nil {
		t.Fatalf("garbage BaseURL accepted")
	}
	if _, err := New(Config{BaseURL: "/just/a/path"}); err == nil {
		t.Fatalf("schemeless BaseURL accepted")
	}
}

// TestRetriesTransientServerErrors: 5xx answers are retried until the
// server recovers, and the call succeeds overall.
func TestRetriesTransientServerErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz = %v, want success after retries", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server hits = %d, want 3 (2 failures + 1 success)", hits.Load())
	}
	if got := c.retries.Value(); got != 2 {
		t.Fatalf("retries counter = %v, want 2", got)
	}
}

// TestNoRetryOnPermanent4xx: a 400 is the server's final word.
func TestNoRetryOnPermanent4xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"no reports in batch"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, err := c.ReportObservations(context.Background(), ObservationBatch{
		Time: 1, Reports: []Report{{Connection: 0, Up: false}},
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if apiErr.Message != "no reports in batch" {
		t.Fatalf("message = %q", apiErr.Message)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want exactly 1 (no retry on 4xx)", hits.Load())
	}
}

// TestHonorsRetryAfter: a 429's Retry-After floors the backoff.
func TestHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	start := time.Now()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The client's own jittered backoff caps at 4ms; only an honored
	// Retry-After explains a ≥1s wait.
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("waited %v, want ≥ 1s from Retry-After", waited)
	}
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d", hits.Load())
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Fatalf("seconds form = %v", d)
	}
	if d := parseRetryAfter(time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)); d <= 0 || d > 2*time.Second {
		t.Fatalf("http-date form = %v", d)
	}
	for _, bad := range []string{"", "-5", "soon", "Mon, 99 Jan"} {
		if d := parseRetryAfter(bad); d != 0 {
			t.Fatalf("parseRetryAfter(%q) = %v, want 0", bad, d)
		}
	}
}

// TestContextDeadlineStopsRetries: once the caller's context expires the
// loop must stop immediately instead of burning remaining attempts.
func TestContextDeadlineStopsRetries(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = 100
		cfg.BaseBackoff = 20 * time.Millisecond
		cfg.MaxBackoff = 20 * time.Millisecond
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := c.Healthz(ctx)
	if err == nil {
		t.Fatalf("succeeded against an all-500 server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if hits.Load() >= 100 {
		t.Fatalf("burned all %d attempts despite a 100ms deadline", hits.Load())
	}
}

// TestMaxAttemptsOne disables retries entirely.
func TestMaxAttemptsOne(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) { cfg.MaxAttempts = 1 })
	if err := c.Healthz(context.Background()); err == nil {
		t.Fatalf("want error with retries disabled")
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1", hits.Load())
	}
}

// TestBreakerLifecycle drives closed → open → half-open → closed with a
// fake clock.
func TestBreakerLifecycle(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if fail.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = 1 // isolate breaker behavior from retry behavior
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = time.Minute
	})
	now := time.Unix(1000, 0)
	c.breaker.now = func() time.Time { return now }

	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		if err := c.Healthz(context.Background()); err == nil {
			t.Fatalf("call %d succeeded against a failing server", i)
		}
	}
	if st := c.breaker.currentState(); st != breakerOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// While open, calls fail fast without touching the network.
	before := hits.Load()
	if err := c.Healthz(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != before {
		t.Fatalf("open breaker still hit the server")
	}

	// After the cooldown a probe goes through; the server has recovered,
	// so the probe closes the breaker.
	now = now.Add(2 * time.Minute)
	fail.Store(false)
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if st := c.breaker.currentState(); st != breakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", st)
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("closed breaker rejected a call: %v", err)
	}
}

// TestBreakerReopensOnFailedProbe: a failing half-open probe goes
// straight back to open.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"still down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = 1
		cfg.BreakerThreshold = 1
		cfg.BreakerCooldown = time.Minute
	})
	now := time.Unix(1000, 0)
	c.breaker.now = func() time.Time { return now }

	if err := c.Healthz(context.Background()); err == nil {
		t.Fatal("want failure")
	}
	now = now.Add(2 * time.Minute)
	if err := c.Healthz(context.Background()); err == nil {
		t.Fatal("probe should have failed")
	}
	if st := c.breaker.currentState(); st != breakerOpen {
		t.Fatalf("state = %v, want open after failed probe", st)
	}
	if err := c.Healthz(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want fail-fast ErrCircuitOpen", err)
	}
}

// TestBatchIDStableAcrossRetries: every delivery of one logical batch
// must carry the same idempotency key, and a fresh key is minted per
// batch.
func TestBatchIDStableAcrossRetries(t *testing.T) {
	var ids []string
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			BatchID string `json:"batch_id"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		ids = append(ids, req.BatchID)
		if hits.Add(1) == 1 {
			http.Error(w, `{"error":"flap"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"events":[]}`))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	res, err := c.ReportObservations(context.Background(), ObservationBatch{
		Time: 1, Reports: []Report{{Connection: 0, Up: false}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] == "" || ids[0] != ids[1] {
		t.Fatalf("batch IDs across retries = %v, want one stable non-empty ID", ids)
	}
	if res.BatchID != ids[0] {
		t.Fatalf("result BatchID = %q, deliveries carried %q", res.BatchID, ids[0])
	}

	res2, err := c.ReportObservations(context.Background(), ObservationBatch{
		Time: 2, Reports: []Report{{Connection: 0, Up: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.BatchID == res.BatchID {
		t.Fatalf("two logical batches shared idempotency key %q", res.BatchID)
	}
}

// TestReplayedHeaderSurfaces: the server's dedup replay marker reaches
// the caller.
func TestReplayedHeaderSurfaces(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Placemond-Replayed", "true")
		w.Write([]byte(`{"events":[{"time":1,"kind":"outage-started"}]}`))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	res, err := c.ReportObservations(context.Background(), ObservationBatch{
		Time: 1, Reports: []Report{{Connection: 0, Up: false}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replayed {
		t.Fatalf("Replayed = false, want true")
	}
	if len(res.Events) != 1 || res.Events[0].Kind != "outage-started" {
		t.Fatalf("events = %v", res.Events)
	}
}

// TestBackoffCapsAndJitter: waits stay within [0, min(base<<n, max)] and
// Retry-After floors them.
func TestBackoffCapsAndJitter(t *testing.T) {
	c := newTestClient(t, "http://example.invalid", func(cfg *Config) {
		cfg.BaseBackoff = 8 * time.Millisecond
		cfg.MaxBackoff = 20 * time.Millisecond
		cfg.MaxRetryAfter = 50 * time.Millisecond
	})
	for attempt := 1; attempt < 20; attempt++ {
		ceil := 8 * time.Millisecond << (attempt - 1)
		if ceil > 20*time.Millisecond || ceil <= 0 {
			ceil = 20 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			if w := c.backoff(attempt, 0); w < 0 || w > ceil {
				t.Fatalf("attempt %d: wait %v outside [0, %v]", attempt, w, ceil)
			}
		}
	}
	if w := c.backoff(1, 40*time.Millisecond); w != 40*time.Millisecond {
		t.Fatalf("Retry-After floor: wait = %v, want 40ms", w)
	}
	if w := c.backoff(1, time.Hour); w != 50*time.Millisecond {
		t.Fatalf("Retry-After cap: wait = %v, want MaxRetryAfter 50ms", w)
	}
}

// TestReadOnlyNotRetried: a 503 carrying Placemond-Read-Only (the
// daemon's WAL failed; the condition is sticky until an operator
// intervenes) is surfaced as ErrReadOnly after a single attempt instead
// of being burned through the retry budget like a transient 503.
func TestReadOnlyNotRetried(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Placemond-Read-Only", "true")
		http.Error(w, `{"error":"daemon is read-only: WAL unavailable"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, err := c.ReportObservations(context.Background(), ObservationBatch{
		Reports: []Report{{Connection: 0, Up: true}},
	})
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("want ErrReadOnly, got %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("APIError not preserved in chain: %v", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("read-only 503 retried: %d attempts", n)
	}
}

// TestNDJSONUpgrade: the client starts on JSON, latches onto the
// streaming content type the first time the daemon advertises
// Placemond-Ndjson: 1, and ships every later batch as NDJSON framing —
// header line, then one report object per line.
func TestNDJSONUpgrade(t *testing.T) {
	type call struct {
		contentType string
		body        string
	}
	var mu sync.Mutex
	var calls []call
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		calls = append(calls, call{contentType: r.Header.Get("Content-Type"), body: string(b)})
		mu.Unlock()
		w.Header().Set("Placemond-Ndjson", "1")
		w.Write([]byte(`{"events":[]}`))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	batch := ObservationBatch{BatchID: "b1", Time: 1, Reports: []Report{
		{Connection: 0, Up: true},
		{Connection: 1, Up: false},
	}}
	if _, err := c.ReportObservations(context.Background(), batch); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	batch.BatchID = "b2"
	batch.Time = 2
	if _, err := c.ReportObservations(context.Background(), batch); err != nil {
		t.Fatalf("second batch: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 {
		t.Fatalf("server saw %d calls, want 2", len(calls))
	}
	// The advertisement arrives with the first response, so the first
	// request is still plain JSON.
	if got := calls[0].contentType; got != "application/json" {
		t.Fatalf("first batch Content-Type = %q, want application/json", got)
	}
	if got := calls[1].contentType; got != "application/x-ndjson" {
		t.Fatalf("second batch Content-Type = %q, want application/x-ndjson", got)
	}
	want := `{"batch_id":"b2","time":2}
{"connection":0,"up":true}
{"connection":1,"up":false}
`
	if calls[1].body != want {
		t.Fatalf("NDJSON framing mismatch:\n got %q\nwant %q", calls[1].body, want)
	}
}

// TestNDJSONNotUpgradedWithoutAdvertisement: a daemon that never sends
// Placemond-Ndjson keeps the client on JSON forever — old daemons see
// only the wire format they understand.
func TestNDJSONNotUpgradedWithoutAdvertisement(t *testing.T) {
	var types []string
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		types = append(types, r.Header.Get("Content-Type"))
		mu.Unlock()
		w.Write([]byte(`{"events":[]}`))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	for i := 0; i < 3; i++ {
		_, err := c.ReportObservations(context.Background(), ObservationBatch{
			Reports: []Report{{Connection: 0, Up: true}},
		})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, ct := range types {
		if ct != "application/json" {
			t.Fatalf("batch %d upgraded to %q without server advertisement", i, ct)
		}
	}
}
