package placemonclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// twoNodeCluster fakes a redirect-mode cluster: node A 307s every
// scenario-scoped request at node B (naming it in Placemond-Owner), and
// node B answers. Returns the two servers and their hit counters.
func twoNodeCluster(t *testing.T) (a, b *httptest.Server, aHits, bHits *atomic.Int64) {
	t.Helper()
	aHits, bHits = new(atomic.Int64), new(atomic.Int64)
	b = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bHits.Add(1)
		if strings.HasSuffix(r.URL.Path, "/diagnosis") {
			w.Write([]byte(`{"in_outage": false, "connections": []}`))
			return
		}
		w.Write([]byte(`{"events": []}`))
	}))
	t.Cleanup(b.Close)
	a = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aHits.Add(1)
		w.Header().Set(OwnerHeader, "node-b")
		w.Header().Set("Location", b.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	t.Cleanup(a.Close)
	return a, b, aHits, bHits
}

// TestRedirectFollowedWithoutRetryBudget: a 307 is routing, not a
// failure — the call succeeds in one logical attempt, consumes no
// retries, performs no backoff, and never trips the breaker.
func TestRedirectFollowedWithoutRetryBudget(t *testing.T) {
	a, _, aHits, bHits := twoNodeCluster(t)
	// Breaker armed at threshold 1: a single counted failure would open
	// it, so the call succeeding proves redirects touch nothing.
	c := newTestClient(t, a.URL, func(cfg *Config) { cfg.BreakerThreshold = 1; cfg.MaxAttempts = 1 })

	sc := c.Scenario("alpha")
	if _, err := sc.Diagnosis(context.Background()); err != nil {
		t.Fatalf("Diagnosis through redirect = %v", err)
	}
	if aHits.Load() != 1 || bHits.Load() != 1 {
		t.Fatalf("hits = (a=%d, b=%d), want one hop each", aHits.Load(), bHits.Load())
	}
	if got := c.retries.Value(); got != 0 {
		t.Fatalf("retries = %v, want 0 — redirects must not burn the retry budget", got)
	}
	if got := c.redirects.Value(); got != 1 {
		t.Fatalf("redirects counter = %v, want 1", got)
	}
	// Second call for the same scenario starts at the learned owner:
	// node A is not consulted again.
	if _, err := sc.Diagnosis(context.Background()); err != nil {
		t.Fatalf("second Diagnosis = %v", err)
	}
	if aHits.Load() != 1 || bHits.Load() != 2 {
		t.Fatalf("hits after hint = (a=%d, b=%d), want the hop skipped", aHits.Load(), bHits.Load())
	}
}

// TestRedirectHintIsPerScenario: the owner hint learned for one scenario
// does not reroute calls for another.
func TestRedirectHintIsPerScenario(t *testing.T) {
	a, _, aHits, _ := twoNodeCluster(t)
	c := newTestClient(t, a.URL, nil)

	if _, err := c.Scenario("alpha").Diagnosis(context.Background()); err != nil {
		t.Fatal(err)
	}
	if aHits.Load() != 1 {
		t.Fatalf("a hits = %d, want 1", aHits.Load())
	}
	// A different scenario still starts at the configured base.
	if _, err := c.Scenario("beta").Diagnosis(context.Background()); err != nil {
		t.Fatal(err)
	}
	if aHits.Load() != 2 {
		t.Fatalf("a hits = %d, want 2 — beta must not reuse alpha's hint", aHits.Load())
	}
}

// TestRedirectHopCap: two nodes that bounce a request between each other
// (stale membership on both sides) produce a permanent error naming the
// hop cap, not an infinite loop and not a retry storm.
func TestRedirectHopCap(t *testing.T) {
	var hits atomic.Int64
	var ts *httptest.Server
	ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Location", ts.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, err := c.Scenario("loop").Diagnosis(context.Background())
	if err == nil || !strings.Contains(err.Error(), "redirect hops") {
		t.Fatalf("looping redirects = %v, want a hop-cap error", err)
	}
	if hits.Load() != int64(maxRedirectHops)+1 {
		t.Fatalf("deliveries = %d, want %d (initial + capped hops)", hits.Load(), maxRedirectHops+1)
	}
	if got := c.retries.Value(); got != 0 {
		t.Fatalf("retries = %v, want 0 — the loop is permanent, not transient", got)
	}
}

// TestStaleOwnerHintDropped: when the hinted owner 404s the scenario
// (deleted, or moved during a membership change), the hint is forgotten
// and the next call starts over at the configured base.
func TestStaleOwnerHintDropped(t *testing.T) {
	var bMode atomic.Int32 // 0: serve, 1: 404
	bHits := new(atomic.Int64)
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bHits.Add(1)
		if bMode.Load() == 1 {
			http.Error(w, `{"error":"scenario not found"}`, http.StatusNotFound)
			return
		}
		w.Write([]byte(`{"in_outage": false, "connections": []}`))
	}))
	defer b.Close()
	aHits := new(atomic.Int64)
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aHits.Add(1)
		w.Header().Set("Location", b.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer a.Close()

	c := newTestClient(t, a.URL, nil)
	sc := c.Scenario("alpha")
	if _, err := sc.Diagnosis(context.Background()); err != nil {
		t.Fatal(err)
	}
	bMode.Store(1)
	if _, err := sc.Diagnosis(context.Background()); err == nil {
		t.Fatal("404 from the hinted owner should surface")
	}
	// The hint is gone: the next call consults the base again.
	base := aHits.Load()
	if _, err := sc.Diagnosis(context.Background()); err == nil {
		t.Fatal("still 404 end-to-end")
	}
	if aHits.Load() != base+1 {
		t.Fatalf("a hits = %d, want %d — the stale hint must be dropped", aHits.Load(), base+1)
	}
}

// TestScenarioMigrateCall: ScenarioClient.Migrate posts the target and
// decodes the handoff record.
func TestScenarioMigrateCall(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || !strings.HasSuffix(r.URL.Path, "/v1/scenarios/alpha/migrate") {
			http.Error(w, `{"error":"wrong route"}`, http.StatusNotFound)
			return
		}
		var req struct {
			Target string `json:"target"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Target != "node-b" {
			http.Error(w, fmt.Sprintf(`{"error":"bad body: %v / %q"}`, err, req.Target), http.StatusBadRequest)
			return
		}
		w.Write([]byte(`{"scenario": "alpha", "from": "node-a", "to": "node-b", "head_seq": 7, "head_hash": "abcd", "duration_seconds": 0.01}`))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	res, err := c.Scenario("alpha").Migrate(context.Background(), "node-b")
	if err != nil {
		t.Fatalf("Migrate = %v", err)
	}
	if res.From != "node-a" || res.To != "node-b" || res.HeadSeq != 7 || res.HeadHash != "abcd" {
		t.Fatalf("Migrate result = %+v", res)
	}
}
