// Package placemonclient is the typed Go client for the placemond
// monitoring API (internal/server): observation ingest, the rolling
// diagnosis, health, and placement jobs.
//
// The client is built for the network the paper assumes away: every call
// runs with a per-attempt timeout, retries transport errors and 429/5xx
// answers with capped exponential backoff and full jitter, honors
// Retry-After, propagates the caller's context deadline, and fails fast
// through a closed/open/half-open circuit breaker once the server looks
// down. Observation batches carry client-generated idempotency keys
// (batch IDs), so at-least-once delivery — retries, duplicates — yields
// exactly-once ingestion against a dedup-enabled placemond. Everything is
// instrumented via internal/metrics.
//
// Every call is traced end to end: the client stamps a Placemond-Trace-Id
// header (minted with the same crypto-random construction as its
// idempotency keys, or adopted from a server-side span already in ctx)
// that is stable across the call's retries, so all deliveries of one
// logical request share one trace ID in the server's logs and
// /debug/traces ring.
package placemonclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mathrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Streaming-ingest negotiation: placemond advertises NDJSON batch support
// by stamping ndjsonHeader on observation responses. Once the client has
// seen the advertisement it encodes subsequent batches as newline-
// delimited JSON (one report per line), which the server ingests through
// its allocation-free scanner; until then — and against servers that
// never advertise — it sends plain JSON. Responses are JSON either way.
const (
	ndjsonContentType = "application/x-ndjson"
	ndjsonHeader      = "Placemond-Ndjson"
)

// ErrCircuitOpen means the breaker refused the call without touching the
// network; retry after the cooldown or inspect the server out of band.
var ErrCircuitOpen = errors.New("placemonclient: circuit breaker open")

// OwnerHeader names the owning node on a cluster node's 307 answers.
const OwnerHeader = "Placemond-Owner"

// maxRedirectHops bounds how many 307s one delivery follows. In a
// healthy cluster a request crosses at most two (stale hint → ring
// owner → migrated-to node); more means the nodes' membership views
// disagree and following further would ping-pong forever.
const maxRedirectHops = 4

// ErrReadOnly means the daemon refused the mutation because a WAL write
// failure froze it read-only (503 with Placemond-Read-Only). The mode is
// sticky until an operator restarts the daemon, so the client does not
// retry: the failure is permanent for this process lifetime.
var ErrReadOnly = errors.New("placemonclient: daemon is read-only (WAL unavailable)")

// APIError is a non-2xx answer from the server, with the decoded error
// envelope when one was present.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server-provided error text (may be empty)
}

// Error renders the status and message.
func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("placemond answered %d", e.Status)
	}
	return fmt.Sprintf("placemond answered %d: %s", e.Status, e.Message)
}

// Config parameterizes New. Only BaseURL is required.
type Config struct {
	// BaseURL locates the placemond instance, e.g. "http://10.0.0.1:8080".
	BaseURL string
	// HTTPClient performs the requests (default: a fresh http.Client).
	// Wrap its Transport (e.g. with internal/faultinject) to simulate a
	// hostile network.
	HTTPClient *http.Client
	// MaxAttempts bounds deliveries per call (default 4; 1 disables
	// retries entirely).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff cap (default 50ms); each
	// further attempt doubles it, and the actual wait is uniform in
	// [0, cap) — "full jitter".
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// MaxRetryAfter caps how long a server-sent Retry-After is honored
	// (default 30s) so a confused server cannot park the client forever.
	MaxRetryAfter time.Duration
	// PerAttemptTimeout bounds each individual delivery (default 5s;
	// ≤ -1 disables, leaving only the caller's context deadline).
	PerAttemptTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (default 5; ≤ -1 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting
	// a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// Registry receives the client's metrics (default: a fresh registry).
	Registry *metrics.Registry
	// Seed feeds the jitter PRNG so tests can reproduce backoff
	// schedules; 0 means time-seeded.
	Seed int64
}

// Client is a placemond API client; safe for concurrent use. Create with
// New.
type Client struct {
	base    *url.URL
	hc      *http.Client
	cfg     Config
	breaker *breaker

	mu  sync.Mutex
	rng *mathrand.Rand

	// ndjson latches true after any response carries ndjsonHeader;
	// subsequent observation batches upgrade to NDJSON encoding.
	ndjson atomic.Bool

	// owners caches cluster owner hints learned from 307 redirects:
	// scenario key → *url.URL base of the node that actually owns it.
	// Later calls for the same scenario start at the cached owner and
	// skip the extra hop; a 404 from the hinted node drops the hint.
	owners sync.Map

	registry  *metrics.Registry
	requests  func(outcome string) *metrics.Counter
	retries   *metrics.Counter
	redirects *metrics.Counter
	latency   *metrics.Histogram
}

// New validates cfg, fills defaults, and builds the client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("placemonclient: Config.BaseURL is required")
	}
	base, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("placemonclient: bad BaseURL: %w", err)
	}
	if base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("placemonclient: BaseURL %q needs a scheme and host", cfg.BaseURL)
	}
	// The client must see 307s itself to learn owner hints and cap hops;
	// net/http would otherwise transparently re-send (request bodies are
	// replayable bytes.Readers). A caller-installed CheckRedirect is
	// respected; a nil one is overridden on a copy, not on the caller's
	// client.
	noFollow := func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{CheckRedirect: noFollow}
	} else if cfg.HTTPClient.CheckRedirect == nil {
		hc := *cfg.HTTPClient
		hc.CheckRedirect = noFollow
		cfg.HTTPClient = &hc
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 30 * time.Second
	}
	switch {
	case cfg.PerAttemptTimeout == 0:
		cfg.PerAttemptTimeout = 5 * time.Second
	case cfg.PerAttemptTimeout < 0:
		cfg.PerAttemptTimeout = 0 // disabled
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}

	c := &Client{
		base:     base,
		hc:       cfg.HTTPClient,
		cfg:      cfg,
		rng:      mathrand.New(mathrand.NewSource(seed)),
		registry: reg,
		requests: func(outcome string) *metrics.Counter {
			return reg.Counter("placemonclient_requests_total",
				"API calls by final outcome.", "outcome", outcome)
		},
		retries: reg.Counter("placemonclient_retries_total",
			"Retried deliveries (attempts beyond the first)."),
		redirects: reg.Counter("placemonclient_redirects_total",
			"Cluster 307 redirects followed (routing, not failures)."),
		latency: reg.Histogram("placemonclient_request_duration_seconds",
			"Wall-clock duration of API calls including retries.", nil),
	}
	for _, o := range []string{"success", "error", "circuit_open"} {
		c.requests(o)
	}
	switch {
	case cfg.BreakerThreshold < 0:
		// Disabled: nil breaker short-circuits allow/success/failure.
	case cfg.BreakerThreshold == 0:
		c.breaker = newBreaker(5, cfg.BreakerCooldown, reg)
	default:
		c.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, reg)
	}
	return c, nil
}

// Registry returns the registry the client's metrics live in.
func (c *Client) Registry() *metrics.Registry { return c.registry }

// --- wire types ---

// Report is one connection state transition.
type Report struct {
	Connection int  `json:"connection"`
	Up         bool `json:"up"`
}

// ObservationBatch is one POST /v1/observations payload. A non-empty
// BatchID is the idempotency key; ReportObservations generates one when
// it is empty, so retries of the same batch always reuse the same key.
type ObservationBatch struct {
	BatchID string   `json:"batch_id,omitempty"`
	Time    float64  `json:"time"`
	Reports []Report `json:"reports"`
}

// Event is one daemon notification triggered by an ingested batch.
type Event struct {
	Time      float64    `json:"time"`
	Kind      string     `json:"kind"`
	Diagnosis *Diagnosis `json:"diagnosis,omitempty"`
}

// Diagnosis is the wire form of a failure localization.
type Diagnosis struct {
	Candidates       [][]int `json:"candidates"`
	DefinitelyFailed []int   `json:"definitely_failed"`
	PossiblyFailed   []int   `json:"possibly_failed"`
	Healthy          []int   `json:"healthy"`
	Unobserved       []int   `json:"unobserved"`
}

// ConnectionStatus is one row of the diagnosis connection table.
type ConnectionStatus struct {
	Service int    `json:"service"`
	Client  int    `json:"client"`
	Host    int    `json:"host"`
	State   string `json:"state"`
}

// DiagnosisResponse is the body of GET /v1/diagnosis. Stale marks a
// served-from-cache diagnosis: the server could not recompute in time and
// fell back to the last good one, StaleAgeSeconds ago.
type DiagnosisResponse struct {
	InOutage        bool               `json:"in_outage"`
	Inconsistent    bool               `json:"inconsistent,omitempty"`
	Stale           bool               `json:"stale,omitempty"`
	StaleAgeSeconds float64            `json:"stale_age_seconds,omitempty"`
	Connections     []ConnectionStatus `json:"connections"`
	Diagnosis       *Diagnosis         `json:"diagnosis,omitempty"`
}

// ServiceSpec is one service of a placement job.
type ServiceSpec struct {
	Name    string `json:"name,omitempty"`
	Clients []int  `json:"clients"`
}

// PlacementRequest is the body of POST /v1/placements.
type PlacementRequest struct {
	Services  []ServiceSpec `json:"services"`
	Alpha     float64       `json:"alpha"`
	Objective string        `json:"objective,omitempty"`
	Algorithm string        `json:"algorithm,omitempty"`
	K         int           `json:"k,omitempty"`
	Seed      int64         `json:"seed,omitempty"`
}

// PlacementResult is a successful placement answer.
type PlacementResult struct {
	Hosts                 []int   `json:"hosts"`
	Objective             float64 `json:"objective"`
	Coverage              int     `json:"coverage"`
	Identifiable          int     `json:"identifiable"`
	Distinguishable       int64   `json:"distinguishable"`
	WorstRelativeDistance float64 `json:"worst_relative_distance"`
	Evaluations           int     `json:"evaluations"`
	DurationSeconds       float64 `json:"duration_seconds"`
}

// IngestResult is ReportObservations' answer: the events the batch
// triggered, the idempotency key it was sent under, whether the server
// replayed a cached response for a batch it had already applied, and the
// trace ID the exchange ran under (as echoed by the server).
type IngestResult struct {
	BatchID  string
	Events   []Event
	Replayed bool
	TraceID  string
}

// --- API methods ---

// ReportObservations ingests one batch of connection state transitions.
// An empty batch.BatchID is filled with a fresh idempotency key; every
// retry of the call reuses that key, so the server applies the batch at
// most once no matter how many deliveries succeed.
func (c *Client) ReportObservations(ctx context.Context, batch ObservationBatch) (*IngestResult, error) {
	if len(batch.Reports) == 0 {
		return nil, fmt.Errorf("placemonclient: empty observation batch")
	}
	if batch.BatchID == "" {
		batch.BatchID = newBatchID()
	}
	var out struct {
		Events []Event `json:"events"`
	}
	var hdr http.Header
	var err error
	if c.ndjson.Load() {
		hdr, err = c.doBody(ctx, http.MethodPost, "/v1/observations",
			ndjsonContentType, encodeNDJSON(batch), &out)
	} else {
		hdr, err = c.do(ctx, http.MethodPost, "/v1/observations", batch, &out)
	}
	if err != nil {
		return nil, err
	}
	return &IngestResult{
		BatchID:  batch.BatchID,
		Events:   out.Events,
		Replayed: hdr.Get("Placemond-Replayed") == "true",
		TraceID:  hdr.Get(trace.Header),
	}, nil
}

// Diagnosis fetches the rolling diagnosis.
func (c *Client) Diagnosis(ctx context.Context) (*DiagnosisResponse, error) {
	var out DiagnosisResponse
	if _, err := c.do(ctx, http.MethodGet, "/v1/diagnosis", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Place runs one placement job on the server's worker pool. Placement is
// a pure computation, so retrying a lost answer is safe.
func (c *Client) Place(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
	var out PlacementResult
	if _, err := c.do(ctx, http.MethodPost, "/v1/placements", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/healthz", nil, nil)
	return err
}

// --- core delivery loop ---

// do runs the retry loop for one API call: breaker gate, delivery with a
// per-attempt timeout, classification, backoff with full jitter and
// Retry-After honoring. It returns the successful response's headers.
//
// One trace ID covers the whole call — adopted from a span already in ctx
// or minted here — and is stamped on every delivery, so the retries of a
// single logical request are correlated in the server's logs.
func (c *Client) do(ctx context.Context, method, path string, in, out any) (http.Header, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return nil, fmt.Errorf("placemonclient: encoding %s body: %w", path, err)
		}
	}
	return c.doBody(ctx, method, path, "application/json", body, out)
}

// doBody is do with the body already encoded, for callers that speak a
// non-JSON request encoding (the NDJSON ingest path).
func (c *Client) doBody(ctx context.Context, method, path, contentType string, body []byte, out any) (http.Header, error) {
	traceID := trace.IDFromContext(ctx)
	if traceID == "" {
		traceID = trace.NewID()
	}
	start := time.Now()
	defer func() { c.latency.Observe(time.Since(start).Seconds()) }()

	// Cluster routing: start at the cached owner when a prior 307 taught
	// us who owns this scenario, else at the configured base.
	key := scenarioKey(path)
	base := c.ownerBase(key)

	var lastErr error
	retryAfter := time.Duration(0)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			if err := c.sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
				c.requests("error").Inc()
				return nil, fmt.Errorf("placemonclient: %s %s: %w (last error: %v)", method, path, err, lastErr)
			}
		}
		if c.breaker != nil && !c.breaker.allow() {
			c.requests("circuit_open").Inc()
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, lastErr)
			}
			return nil, ErrCircuitOpen
		}

		// One delivery = one attempt plus any 307s it is routed through.
		// Redirects are routing, not failures: they consume no retry
		// budget, trigger no backoff, and never touch the breaker's
		// failure count — but the hop cap stops a ping-pong between nodes
		// with stale membership views.
		var (
			hdr       http.Header
			retryable bool
			ra        time.Duration
			err       error
		)
		for hops := 0; ; hops++ {
			var redirect *url.URL
			hdr, redirect, retryable, ra, err = c.attempt(ctx, base, method, path, traceID, contentType, body, out)
			if redirect == nil {
				break
			}
			if hops+1 > maxRedirectHops {
				c.requests("error").Inc()
				return nil, fmt.Errorf("placemonclient: %s %s: gave up after %d redirect hops (stale cluster membership?)",
					method, path, maxRedirectHops)
			}
			c.redirects.Inc()
			base = &url.URL{Scheme: redirect.Scheme, Host: redirect.Host}
			if key != "" {
				c.owners.Store(key, base)
			}
		}
		if err == nil {
			c.requests("success").Inc()
			return hdr, nil
		}
		lastErr, retryAfter = err, ra
		if !retryable {
			c.dropStaleOwner(key, err)
			c.requests("error").Inc()
			return nil, fmt.Errorf("placemonclient: %s %s: %w", method, path, lastErr)
		}
		if ctx.Err() != nil {
			c.requests("error").Inc()
			return nil, fmt.Errorf("placemonclient: %s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
		}
	}
	c.requests("error").Inc()
	return nil, fmt.Errorf("placemonclient: %s %s failed after %d attempts: %w",
		method, path, c.cfg.MaxAttempts, lastErr)
}

// scenarioKey maps a request path to the scenario whose owner hint it
// should use: the {id} of a scenario-scoped route, "default" for the
// legacy tenant routes, "" (no hint) for node-local endpoints.
func scenarioKey(path string) string {
	if rest, ok := strings.CutPrefix(path, "/v1/scenarios/"); ok {
		id, _, _ := strings.Cut(rest, "/")
		id, _, _ = strings.Cut(id, "?")
		return id
	}
	if strings.HasPrefix(path, "/v1/") {
		return "default"
	}
	return ""
}

// ownerBase returns the cached owner for key, or the configured base.
func (c *Client) ownerBase(key string) *url.URL {
	if key != "" {
		if v, ok := c.owners.Load(key); ok {
			return v.(*url.URL)
		}
	}
	return c.base
}

// dropStaleOwner forgets a cached owner hint when the hinted node says
// the scenario does not exist — deleted, or moved while the membership
// changed — so the next call starts over at the configured base.
func (c *Client) dropStaleOwner(key string, err error) {
	if key == "" {
		return
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
		c.owners.Delete(key)
	}
}

// attempt performs one delivery against base and classifies the
// outcome: retryable covers transport errors, per-attempt timeouts,
// 429, and 5xx; other 4xx answers are permanent (and count as breaker
// successes — the server is alive, it just rejected the request). A
// 307 returns the redirect target (also a breaker success: a node that
// knows who owns the scenario is a healthy node).
func (c *Client) attempt(ctx context.Context, base *url.URL, method, path, traceID, contentType string, body []byte, out any) (http.Header, *url.URL, bool, time.Duration, error) {
	actx := ctx
	if c.cfg.PerAttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.PerAttemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	path, query, _ := strings.Cut(path, "?")
	u := base.JoinPath(path)
	u.RawQuery = query
	req, err := http.NewRequestWithContext(actx, method, u.String(), rd)
	if err != nil {
		return nil, nil, false, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set(trace.Header, traceID)

	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's deadline expired, not just this attempt's:
			// retrying would only burn the corpse.
			return nil, nil, false, 0, ctx.Err()
		}
		c.breakerFailure()
		return nil, nil, true, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.Header.Get(ndjsonHeader) == "1" {
		// The daemon speaks streaming ingest; upgrade future batches.
		c.ndjson.Store(true)
	}

	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		c.breakerSuccess()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				// A 2xx whose body died mid-read (connection reset after
				// the status line): the server answered, the network ate
				// it. Retry — idempotency keys make that safe.
				return nil, nil, true, 0, fmt.Errorf("decoding %s answer: %w", path, err)
			}
		}
		return resp.Header, nil, false, 0, nil
	case resp.StatusCode == http.StatusTemporaryRedirect:
		// Cluster ownership routing: this node does not host the
		// scenario and Location names the node that does.
		c.breakerSuccess()
		loc := resp.Header.Get("Location")
		target, perr := u.Parse(loc)
		if perr != nil || target.Host == "" {
			return nil, nil, false, 0, fmt.Errorf("redirect with unusable Location %q: %w", loc, apiError(resp))
		}
		return nil, target, false, 0, nil
	case resp.StatusCode == http.StatusServiceUnavailable &&
		resp.Header.Get("Placemond-Read-Only") == "true":
		// Deliberate, sticky degradation — not an outage: the daemon is
		// alive (breaker success) but refuses mutations until restarted,
		// so retrying this call is wasted work.
		c.breakerSuccess()
		return nil, nil, false, 0, fmt.Errorf("%w: %w", ErrReadOnly, apiError(resp))
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		c.breakerFailure()
		ra := parseRetryAfter(resp.Header.Get("Retry-After"))
		return nil, nil, true, ra, apiError(resp)
	default:
		c.breakerSuccess()
		return nil, nil, false, 0, apiError(resp)
	}
}

func (c *Client) breakerSuccess() {
	if c.breaker != nil {
		c.breaker.success()
	}
}

func (c *Client) breakerFailure() {
	if c.breaker != nil {
		c.breaker.failure()
	}
}

// backoff computes the wait before the attempt-th delivery (attempt ≥ 1):
// full jitter over an exponentially growing cap, floored by any
// Retry-After the server sent (itself capped by MaxRetryAfter).
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	ceil := c.cfg.BaseBackoff << (attempt - 1)
	if ceil > c.cfg.MaxBackoff || ceil <= 0 {
		ceil = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	wait := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.mu.Unlock()
	if retryAfter > c.cfg.MaxRetryAfter {
		retryAfter = c.cfg.MaxRetryAfter
	}
	if retryAfter > wait {
		wait = retryAfter
	}
	return wait
}

// sleep waits d or until ctx ends, whichever first.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter handles both RFC 9110 forms: delay-seconds and
// HTTP-date. Unparseable values are ignored.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// apiError decodes the server's {"error": ...} envelope, falling back to
// the raw body.
func apiError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var envelope struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if err := json.Unmarshal(raw, &envelope); err == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}

// newBatchID mints a 96-bit random idempotency key — the same
// construction as trace IDs, shared via internal/trace.
func newBatchID() string {
	return trace.NewID()
}

// encodeNDJSON renders a batch in placemond's streaming ingest framing:
// a header line carrying the batch ID and virtual time, then one report
// object per line.
func encodeNDJSON(batch ObservationBatch) []byte {
	var buf bytes.Buffer
	buf.Grow(64 + 32*len(batch.Reports))
	enc := json.NewEncoder(&buf)
	header := struct {
		BatchID string  `json:"batch_id,omitempty"`
		Time    float64 `json:"time"`
	}{BatchID: batch.BatchID, Time: batch.Time}
	// Encoding fixed wire structs cannot fail; Encode appends the
	// newline that frames each NDJSON line.
	_ = enc.Encode(header)
	for _, r := range batch.Reports {
		_ = enc.Encode(r)
	}
	return buf.Bytes()
}
