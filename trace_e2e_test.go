package placemon_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	placemon "repro"
	"repro/internal/faultinject"
	"repro/internal/trace"
	"repro/placemonclient"
)

// syncBuffer is a goroutine-safe log sink: the server logs from request
// goroutines while the test drives traffic.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// tracesSnapshot fetches /debug/traces and returns the ring newest-first.
func tracesSnapshot(t *testing.T, baseURL string) []trace.Record {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status %d", resp.StatusCode)
	}
	var out struct {
		Traces []trace.Record `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Traces
}

// findTrace returns the first ring record with the given trace ID.
func findTrace(records []trace.Record, id string) *trace.Record {
	for i := range records {
		if records[i].TraceID == id {
			return &records[i]
		}
	}
	return nil
}

// stageByName returns the named stage of a record, or nil.
func stageByName(rec *trace.Record, name string) *trace.Stage {
	for i := range rec.Stages {
		if rec.Stages[i].Name == name {
			return &rec.Stages[i]
		}
	}
	return nil
}

// TestTracePropagationEndToEnd is the acceptance run for the tracing
// layer: observation batches travel from the retrying client through a
// fault injector that drops and duplicates deliveries, and every hop must
// agree on the request's trace ID — the response header the client
// surfaces, the structured log lines, the /debug/traces ring entry, and
// (for placement jobs) the worker-pool and engine-round stages recorded
// inside the span. Dedup-replayed batches keep their batch semantics
// while carrying their own distinct trace IDs.
func TestTracePropagationEndToEnd(t *testing.T) {
	sc := buildChaosScenario(t, 1)

	logs := &syncBuffer{}
	logger := slog.New(slog.NewTextHandler(logs, &slog.HandlerOptions{Level: slog.LevelInfo}))
	srv, err := placemon.NewServer(sc.nw, sc.doc, placemon.ServerConfig{
		Logger:      logger,
		TraceBuffer: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Drops force retries (one trace ID spanning all attempts of a batch)
	// and duplicates force server-side dedup replays of live traffic.
	inj, err := faultinject.New(faultinject.Policy{
		Seed:     7,
		DropProb: 0.15,
		DupProb:  0.20,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := retryingClient(t, ts.URL, inj, 12)

	// Every delivered batch must come back with the server's trace ID in
	// the response header, even when the delivery needed retries.
	var first *placemonclient.IngestResult
	for i, b := range sc.batches {
		res, err := client.ReportObservations(context.Background(), b)
		if err != nil {
			t.Fatalf("batch %d/%d lost despite retries: %v", i+1, len(sc.batches), err)
		}
		if res.TraceID == "" {
			t.Fatalf("batch %d: no %s header on the response", i+1, trace.Header)
		}
		if first == nil {
			first = res
		}
	}
	if inj.Total() == 0 {
		t.Fatalf("no faults injected; the run proved nothing about retries")
	}

	// Replaying a batch by hand (same batch ID) must dedup — and the
	// replay is its own request, so it carries a different trace ID.
	replayBatch := sc.batches[len(sc.batches)-1]
	replayBatch.BatchID = "e2e-replay-batch"
	if _, err := client.ReportObservations(context.Background(), replayBatch); err != nil {
		t.Fatal(err)
	}
	replay, err := client.ReportObservations(context.Background(), replayBatch)
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Replayed {
		t.Fatalf("second delivery of batch %q not marked replayed", replay.BatchID)
	}
	if replay.TraceID == "" || replay.TraceID == first.TraceID {
		t.Fatalf("replay trace ID %q should be fresh (first was %q)", replay.TraceID, first.TraceID)
	}

	// A placement job with a caller-chosen trace ID: the client stamps it
	// on the wire, the server adopts it, and the span follows the job into
	// the worker pool and the engine rounds.
	const placeTraceID = "e2e-placement-trace-id"
	ctx := trace.NewContext(context.Background(), trace.NewSpan(placeTraceID))
	services := sc.doc.ToServices()
	if _, err := client.Place(ctx, placemonclient.PlacementRequest{
		Services: []placemonclient.ServiceSpec{
			{Name: services[0].Name, Clients: services[0].Clients},
			{Name: services[1].Name, Clients: services[1].Clients},
		},
		Alpha: sc.doc.Alpha,
	}); err != nil {
		t.Fatal(err)
	}

	records := tracesSnapshot(t, ts.URL)

	// The ingest request's ring entry: same trace ID the client saw, with
	// the full decode → dedup → ingest pipeline timed.
	ingestRec := findTrace(records, first.TraceID)
	if ingestRec == nil {
		t.Fatalf("trace %q not in /debug/traces ring (%d records)", first.TraceID, len(records))
	}
	for _, name := range []string{"decode", "dedup", "ingest"} {
		st := stageByName(ingestRec, name)
		if st == nil {
			t.Fatalf("ingest trace %q missing stage %q: %+v", first.TraceID, name, ingestRec.Stages)
		}
		if st.DurationSeconds <= 0 {
			t.Errorf("ingest stage %q has zero duration", name)
		}
	}

	// The hand-replayed batch's ring entry is marked as a dedup hit.
	replayRec := findTrace(records, replay.TraceID)
	if replayRec == nil {
		t.Fatalf("replay trace %q not in ring", replay.TraceID)
	}
	if v, ok := replayRec.Attrs["replayed"].(bool); !ok || !v {
		t.Fatalf("replay trace attrs = %v, want replayed=true", replayRec.Attrs)
	}

	// The placement request's ring entry: the adopted ID, the worker-pool
	// stages, and at least one engine round — ≥ 3 named, timed stages.
	placeRec := findTrace(records, placeTraceID)
	if placeRec == nil {
		t.Fatalf("placement trace %q not in ring", placeTraceID)
	}
	timed := 0
	for _, name := range []string{"decode", "queue wait", "place"} {
		st := stageByName(placeRec, name)
		if st == nil {
			t.Fatalf("placement trace missing stage %q: %+v", name, placeRec.Stages)
		}
		if st.DurationSeconds <= 0 {
			t.Errorf("placement stage %q has zero duration", name)
		} else {
			timed++
		}
	}
	if timed < 3 {
		t.Fatalf("placement trace has %d non-zero-duration stages, want ≥ 3", timed)
	}
	rounds := 0
	for _, st := range placeRec.Stages {
		if strings.HasPrefix(st.Name, "placement round") {
			rounds++
		}
	}
	if rounds == 0 {
		t.Fatalf("placement trace has no engine-round stages: %+v", placeRec.Stages)
	}
	if placeRec.DurationSeconds <= 0 || placeRec.Status != http.StatusOK {
		t.Fatalf("placement record = status %d, %.9fs", placeRec.Status, placeRec.DurationSeconds)
	}

	// The structured request log carries the same IDs.
	text := logs.String()
	for _, id := range []string{first.TraceID, replay.TraceID, placeTraceID} {
		if !strings.Contains(text, id) {
			t.Errorf("structured logs missing trace ID %q", id)
		}
	}

	// Trace metadata never changes behavior: the traced placement matches
	// the in-process engine bit for bit.
	inProc, err := sc.nw.Place(services, placemon.PlaceConfig{Alpha: sc.doc.Alpha})
	if err != nil {
		t.Fatal(err)
	}
	var viaPool placemonclient.PlacementResult
	resp, err := http.Post(ts.URL+"/v1/placements", "application/json",
		strings.NewReader(mustPlacementBody(t, services, sc.doc.Alpha)))
	if err != nil {
		t.Fatal(err)
	}
	mustDecode(t, resp, &viaPool)
	for i, h := range viaPool.Hosts {
		if h != inProc.Hosts[i] {
			t.Fatalf("traced pool placement %v != in-process %v", viaPool.Hosts, inProc.Hosts)
		}
	}
}

func mustPlacementBody(t *testing.T, services []placemon.Service, alpha float64) string {
	t.Helper()
	specs := make([]map[string]any, len(services))
	for i, s := range services {
		specs[i] = map[string]any{"name": s.Name, "clients": s.Clients}
	}
	raw, err := json.Marshal(map[string]any{"services": specs, "alpha": alpha})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
