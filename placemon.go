// Package placemon is a library for monitoring-aware service placement,
// reproducing "Service Placement for Detecting and Localizing Failures
// Using End-to-End Observations" (He et al., ICDCS 2016).
//
// The workflow has three stages:
//
//  1. Describe the network: BuildTopology (the paper's calibrated ISP
//     maps), NewNetwork (your own edge list), or Load (edge-list file).
//  2. Place services: Network.Place selects a host for each service from
//     the QoS-feasible candidates, maximizing a failure-monitoring
//     objective (coverage, identifiability, or distinguishability) with
//     the paper's 1/2-approximate greedy, or using the QoS/random/brute-
//     force baselines.
//  3. Operate: Network.Observe turns ground-truth failures into the binary
//     connection states the service layer sees, and Network.Localize runs
//     Boolean tomography over those states to diagnose the failure.
//
// All computations are deterministic; randomized algorithms take explicit
// seeds.
package placemon

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Network is an immutable routed service network. Create it with
// NewNetwork, BuildTopology, or Load; methods are safe for concurrent use.
type Network struct {
	g      *graph.Graph
	router *routing.Router
	// clients are suggested client locations (dangling nodes for built-in
	// topologies); may be empty for custom networks.
	clients []int
}

// Edge is an undirected network link for NewNetwork.
type Edge struct {
	U, V int
}

// NewNetwork builds a network with numNodes nodes and the given undirected
// edges. The graph must be connected, simple, and loop-free.
func NewNetwork(numNodes int, edges []Edge) (*Network, error) {
	g := graph.New(numNodes)
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, fmt.Errorf("placemon: edge (%d, %d): %w", e.U, e.V, err)
		}
	}
	return finishNetwork(g)
}

// Load reads a network from the textual edge-list format (see the README
// for the grammar: "edge u v [weight]" / "node id label" / comments).
func Load(r io.Reader) (*Network, error) {
	g, err := graph.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return finishNetwork(g)
}

// BuildTopology constructs one of the paper's calibrated evaluation
// topologies: "Abovenet", "Tiscali", or "AT&T" (Table I).
func BuildTopology(name string) (*Network, error) {
	spec, err := topology.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	topo, err := topology.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	router, err := routing.New(topo.Graph)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return &Network{g: topo.Graph, router: router, clients: topo.CandidateClients}, nil
}

// TopologyNames lists the built-in topology names.
func TopologyNames() []string {
	specs := topology.Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

func finishNetwork(g *graph.Graph) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	// Lazy routing: shortest-path trees are built (and memoized) per
	// queried root, so a 100k-node custom network costs memory and time
	// proportional to the clients and candidate hosts actually routed,
	// not O(N²) for all-pairs. Results are identical to eager routing.
	router, err := routing.NewLazy(g)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return &Network{g: g, router: router, clients: g.DanglingNodes()}, nil
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return nw.g.NumNodes() }

// NumLinks returns the link count.
func (nw *Network) NumLinks() int { return nw.g.NumEdges() }

// NodeLabel returns the label of node v.
func (nw *Network) NodeLabel(v int) string { return nw.g.Label(v) }

// SuggestedClients returns natural client locations: the access (degree-1)
// nodes for built-in topologies and loaded graphs.
func (nw *Network) SuggestedClients() []int {
	return append([]int(nil), nw.clients...)
}

// Distance returns the routing distance (hops for unweighted graphs)
// between two nodes.
func (nw *Network) Distance(u, v int) float64 { return nw.router.Distance(u, v) }

// PathNodes returns the routed node sequence from client c to host h,
// endpoints included.
func (nw *Network) PathNodes(c, h int) []int { return nw.router.PathNodes(c, h) }

// Service declares one service to place.
type Service struct {
	// Name is a human-readable identifier (optional).
	Name string
	// Clients are the access nodes interested in the service; must be
	// non-empty.
	Clients []int
}

// Algorithm selects the placement strategy.
type Algorithm string

// Placement strategies.
const (
	// AlgorithmGreedy is Algorithm 2: 1/2-approximate for the coverage
	// and distinguishability objectives.
	AlgorithmGreedy Algorithm = "greedy"
	// AlgorithmLazy is Algorithm 2 with CELF lazy evaluation: the same
	// placement as AlgorithmGreedy — identical hosts, value, and order —
	// computed with far fewer objective evaluations. It is the default
	// for submodular objectives (coverage, distinguishability); the
	// non-submodular identifiability objective transparently runs the
	// exact greedy instead.
	AlgorithmLazy Algorithm = "lazy"
	// AlgorithmLazyParallel is AlgorithmLazy with the evaluations fanned
	// out across GOMAXPROCS goroutines; same placement, fastest on large
	// networks and k ≥ 2 objectives.
	AlgorithmLazyParallel Algorithm = "lazy-parallel"
	// AlgorithmQoS places each service at its minimum-worst-distance host.
	AlgorithmQoS Algorithm = "qos"
	// AlgorithmRandom places each service uniformly within its candidates.
	AlgorithmRandom Algorithm = "random"
	// AlgorithmBruteForce enumerates all placements (small instances only).
	AlgorithmBruteForce Algorithm = "bruteforce"
	// AlgorithmBranchBound computes the exact optimum with submodular
	// bound pruning; only valid for the coverage and distinguishability
	// objectives.
	AlgorithmBranchBound Algorithm = "branchbound"
)

// ObjectiveKind selects the monitoring measure to maximize.
type ObjectiveKind string

// Monitoring objectives (Section II-B of the paper).
const (
	// ObjectiveCoverage maximizes the number of nodes on some path (MCSP).
	ObjectiveCoverage ObjectiveKind = "coverage"
	// ObjectiveIdentifiability maximizes the number of nodes whose state
	// is uniquely determined under ≤ K failures (MISP).
	ObjectiveIdentifiability ObjectiveKind = "identifiability"
	// ObjectiveDistinguishability maximizes the number of distinguishable
	// failure-set pairs (MDSP) — the paper's best all-round choice.
	ObjectiveDistinguishability ObjectiveKind = "distinguishability"
)

// PlaceConfig parameterizes Network.Place.
type PlaceConfig struct {
	// Alpha is the QoS slack in [0, 1] (eq. 3): 0 = only best-QoS hosts,
	// 1 = any host.
	Alpha float64
	// Objective is the measure to maximize; default distinguishability.
	Objective ObjectiveKind
	// K is the failure budget for identifiability/distinguishability;
	// default 1 (values above 1 are exponential — small networks only).
	K int
	// Algorithm is the strategy. The default is lazy for submodular
	// objectives without capacity constraints — identical results to
	// greedy, fewer evaluations — and greedy otherwise.
	Algorithm Algorithm
	// Seed drives AlgorithmRandom.
	Seed int64
	// BruteForceBudget caps the BF search space (0 = default).
	BruteForceBudget int64
	// InterestNodes, when non-empty, restricts the objective to these
	// nodes (Section VII-B).
	InterestNodes []int
	// Capacity, when non-nil, adds node capacity constraints (Section
	// VII-A) and routes greedy placement through the capacitated variant.
	Capacity *Capacity
	// Progress, when non-nil, receives one callback per completed
	// greedy/lazy round (see RoundProgress). Honored by the greedy, lazy,
	// and lazy-parallel algorithms — including the lazy engines' eager
	// fallback for non-submodular objectives — and ignored by the rest.
	// The callback runs on the engine goroutine between rounds; it only
	// observes the computation and never changes its result.
	Progress func(RoundProgress)
	// Context, when non-nil, bounds the placement run: the greedy, lazy,
	// and lazy-parallel engines observe cancellation once per round (the
	// same cadence as Progress) and return an error wrapping ctx.Err(),
	// so an abandoned or drained job stops within one round instead of
	// running to completion. Nil means no cancellation. A canceled run
	// never returns a partial placement.
	Context context.Context
}

// RoundProgress reports one completed round of a greedy or lazy
// placement run to PlaceConfig.Progress.
type RoundProgress struct {
	// Round is the 0-based round index (one service placed per round).
	Round int
	// Service and Host are the winning (service, host) pair.
	Service int
	Host    int
	// Gain is the marginal objective gain of the winning pair.
	Gain float64
	// Candidates counts the (service, host) pairs examined this round.
	Candidates int
	// Evaluations counts objective evaluations spent this round.
	Evaluations int
	// Duration is the wall-clock time of the round.
	Duration time.Duration
}

// Capacity models the Section VII-A constraints.
type Capacity struct {
	// Demand[s] is the resource consumption of service s; must cover
	// every service.
	Demand []float64
	// HostCapacity maps node → available resource; absent nodes are
	// unlimited.
	HostCapacity map[int]float64
}

// Result describes a computed placement.
type Result struct {
	// Hosts[s] is the node hosting service s (-1 if it could not be
	// placed under capacity constraints).
	Hosts []int
	// Objective is the achieved objective value.
	Objective float64
	// Coverage, Identifiable, Distinguishable are the three k=1 measures
	// of the final placement, regardless of which objective drove it.
	Coverage        int
	Identifiable    int
	Distinguishable int64
	// WorstRelativeDistance is the QoS degradation max_s d̄(C_s, h_s).
	WorstRelativeDistance float64
	// Evaluations counts objective evaluations performed.
	Evaluations int
}

// Place selects hosts for the services under cfg. See PlaceConfig for
// defaults.
func (nw *Network) Place(services []Service, cfg PlaceConfig) (*Result, error) {
	inst, obj, err := nw.prepare(services, cfg)
	if err != nil {
		return nil, err
	}

	algo := cfg.Algorithm
	if algo == "" {
		// Default: the lazy engine wherever it provably matches greedy
		// bit-for-bit (submodular objective, no capacity constraints).
		if cfg.Capacity == nil && placement.IsSubmodular(obj) {
			algo = AlgorithmLazy
		} else {
			algo = AlgorithmGreedy
		}
	}
	if cfg.Capacity != nil && algo != AlgorithmGreedy {
		return nil, fmt.Errorf("placemon: capacity constraints are only supported with the greedy algorithm, not %q", algo)
	}

	var progress placement.ProgressFunc
	if cfg.Progress != nil {
		report := cfg.Progress
		progress = func(r placement.Round) {
			report(RoundProgress{
				Round:       r.Index,
				Service:     r.Service,
				Host:        r.Host,
				Gain:        r.Gain,
				Candidates:  r.Candidates,
				Evaluations: r.Evaluations,
				Duration:    r.Duration,
			})
		}
	}

	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}

	var res *placement.Result
	switch algo {
	case AlgorithmGreedyLS:
		res, err = placeLS(inst, obj)
	case AlgorithmLazy:
		res, err = placement.GreedyLazyCtx(ctx, inst, obj, progress)
	case AlgorithmLazyParallel:
		res, err = placement.GreedyLazyParallelCtx(ctx, inst, obj, 0, progress)
	case AlgorithmGreedy:
		if cfg.Capacity != nil {
			res, err = placement.GreedyCapacitated(inst, obj, placement.CapacityConstraints{
				Demand:   cfg.Capacity.Demand,
				Capacity: cfg.Capacity.HostCapacity,
			})
		} else {
			res, err = placement.GreedyCtx(ctx, inst, obj, progress)
		}
	case AlgorithmQoS:
		res, err = placement.QoS(inst, obj)
	case AlgorithmRandom:
		res, err = placement.Random(inst, obj, rand.New(rand.NewSource(cfg.Seed)))
	case AlgorithmBruteForce:
		res, err = placement.BruteForce(inst, obj, cfg.BruteForceBudget)
	case AlgorithmBranchBound:
		res, err = placement.BranchAndBound(inst, obj, cfg.BruteForceBudget)
	default:
		return nil, fmt.Errorf("placemon: unknown algorithm %q", cfg.Algorithm)
	}
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}

	metrics, merr := inst.Evaluate(res.Placement)
	if merr != nil {
		return nil, fmt.Errorf("placemon: %w", merr)
	}
	return &Result{
		Hosts:                 append([]int(nil), res.Placement.Hosts...),
		Objective:             res.Value,
		Coverage:              metrics.Coverage,
		Identifiable:          metrics.S1,
		Distinguishable:       metrics.D1,
		WorstRelativeDistance: inst.WorstRelativeDistance(res.Placement),
		Evaluations:           res.Evaluations,
	}, nil
}

// CandidateHosts returns the QoS-feasible hosts H_s for a client set at
// slack α (Section III-A).
func (nw *Network) CandidateHosts(clients []int, alpha float64) ([]int, error) {
	inst, _, err := nw.prepare([]Service{{Name: "probe", Clients: clients}}, PlaceConfig{Alpha: alpha})
	if err != nil {
		return nil, err
	}
	return append([]int(nil), inst.Candidates(0)...), nil
}

// Evaluate computes the three k=1 monitoring measures of an arbitrary
// host assignment (one host per service, in candidate sets at the given
// α).
func (nw *Network) Evaluate(services []Service, hosts []int, alpha float64) (*Result, error) {
	inst, _, err := nw.prepare(services, PlaceConfig{Alpha: alpha})
	if err != nil {
		return nil, err
	}
	pl := placement.Placement{Hosts: append([]int(nil), hosts...)}
	metrics, err := inst.Evaluate(pl)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return &Result{
		Hosts:                 append([]int(nil), hosts...),
		Coverage:              metrics.Coverage,
		Identifiable:          metrics.S1,
		Distinguishable:       metrics.D1,
		WorstRelativeDistance: inst.WorstRelativeDistance(pl),
	}, nil
}

func (nw *Network) prepare(services []Service, cfg PlaceConfig) (*placement.Instance, placement.Objective, error) {
	if len(services) == 0 {
		return nil, nil, fmt.Errorf("placemon: no services")
	}
	svcs := make([]placement.Service, len(services))
	for i, s := range services {
		svcs[i] = placement.Service{Name: s.Name, Clients: s.Clients}
	}
	inst, err := placement.NewInstance(nw.router, svcs, cfg.Alpha)
	if err != nil {
		return nil, nil, fmt.Errorf("placemon: %w", err)
	}
	obj, err := nw.objective(cfg)
	if err != nil {
		return nil, nil, err
	}
	return inst, obj, nil
}

func (nw *Network) objective(cfg PlaceConfig) (placement.Objective, error) {
	k := cfg.K
	if k == 0 {
		k = 1
	}
	kind := cfg.Objective
	if kind == "" {
		kind = ObjectiveDistinguishability
	}
	interest := cfg.InterestNodes
	switch kind {
	case ObjectiveCoverage:
		if len(interest) > 0 {
			return placement.NewCoverageOfInterest(nw.NumNodes(), interest), nil
		}
		return placement.NewCoverage(), nil
	case ObjectiveIdentifiability:
		if len(interest) > 0 {
			if k != 1 {
				return nil, fmt.Errorf("placemon: interest-restricted identifiability supports only K = 1")
			}
			return placement.NewIdentifiabilityOfInterest(nw.NumNodes(), interest), nil
		}
		obj, err := placement.NewIdentifiability(k)
		if err != nil {
			return nil, fmt.Errorf("placemon: %w", err)
		}
		return obj, nil
	case ObjectiveDistinguishability:
		if len(interest) > 0 {
			if k != 1 {
				return nil, fmt.Errorf("placemon: interest-restricted distinguishability supports only K = 1")
			}
			return placement.NewDistinguishabilityOfInterest(nw.NumNodes(), interest), nil
		}
		obj, err := placement.NewDistinguishability(k)
		if err != nil {
			return nil, fmt.Errorf("placemon: %w", err)
		}
		return obj, nil
	default:
		return nil, fmt.Errorf("placemon: unknown objective %q", cfg.Objective)
	}
}

// WithLinkNodes returns a copy of the network in which every link is
// replaced by a logical link-node (the paper's Section II-A device for
// monitoring link failures with the node-failure machinery), plus the IDs
// of the new link nodes. Failing a returned ID in Observe simulates the
// corresponding link failure; placements computed on the transformed
// network monitor both node and link health.
func (nw *Network) WithLinkNodes() (*Network, []int, error) {
	split, linkNodes := nw.g.SplitLinks()
	out, err := finishNetwork(split)
	if err != nil {
		return nil, nil, err
	}
	return out, append([]int(nil), linkNodes...), nil
}
