package placemon_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	placemon "repro"
	"repro/internal/faultinject"
	"repro/internal/wal"
	"repro/placemonclient"
)

// chaosPolicy is the fault mix the soak runs under: roughly one in three
// deliveries is harmed, covering every injectable kind.
func chaosPolicy(seed int64) faultinject.Policy {
	return faultinject.Policy{
		Seed:           seed,
		DropProb:       0.10,
		FlapProb:       0.08,
		FlapRetryAfter: 0, // "Retry-After: 0": honored, but keeps the soak fast
		ResetProb:      0.08,
		DupProb:        0.10,
		HoldProb:       0.06,
		MaxHold:        4 * time.Millisecond,
		DelayProb:      0.10,
		MaxDelay:       2 * time.Millisecond,
		ConnResetProb:  0.10,
	}
}

// chaosScenario is the shared fixture: a placed Abovenet deployment plus
// a deterministic timeline of full-state observation batches (fail one
// node, clear, next node, ...), ending mid-outage so the diagnosis can be
// checked.
type chaosScenario struct {
	nw       *placemon.Network
	doc      placemon.PlacementFile
	batches  []placemonclient.ObservationBatch
	lastFail int // the node the final batch leaves failed
}

func buildChaosScenario(t *testing.T, cycles int) *chaosScenario {
	t.Helper()
	nw, err := placemon.BuildTopology("Abovenet")
	if err != nil {
		t.Fatal(err)
	}
	clients := nw.SuggestedClients()
	if len(clients) < 4 {
		t.Fatalf("only %d suggested clients", len(clients))
	}
	services := []placemon.Service{
		{Name: "svc-0", Clients: clients[:2]},
		{Name: "svc-1", Clients: clients[2:4]},
	}
	const alpha = 0.6
	res, err := nw.Place(services, placemon.PlaceConfig{Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	doc := placemon.NewPlacementFile("Abovenet", alpha, services, res.Hosts)

	// Fault targets: nodes whose failure actually breaks a monitored
	// connection, so every fail step produces daemon events.
	var targets []int
	var failedStates [][]bool
	for node := 0; node < nw.NumNodes() && len(targets) < 8; node++ {
		obs, err := nw.Observe(services, res.Hosts, alpha, []int{node})
		if err != nil {
			t.Fatal(err)
		}
		if obs.AnyFailure() {
			targets = append(targets, node)
			failedStates = append(failedStates, append([]bool(nil), obs.Failed...))
		}
	}
	if len(targets) < 3 {
		t.Fatalf("only %d observable fault targets", len(targets))
	}

	numConns := len(failedStates[0])
	allUp := make([]placemonclient.Report, numConns)
	for i := range allUp {
		allUp[i] = placemonclient.Report{Connection: i, Up: true}
	}

	sc := &chaosScenario{nw: nw, doc: doc}
	step := 0
	batch := func(reports []placemonclient.Report) {
		step++
		sc.batches = append(sc.batches, placemonclient.ObservationBatch{
			Time:    float64(step),
			Reports: append([]placemonclient.Report(nil), reports...),
		})
	}
	for cycle := 0; cycle < cycles; cycle++ {
		for ti, node := range targets {
			down := make([]placemonclient.Report, numConns)
			for i, failed := range failedStates[ti] {
				down[i] = placemonclient.Report{Connection: i, Up: !failed}
			}
			batch(down)
			sc.lastFail = node
			batch(allUp)
		}
	}
	// Drop the final all-clear so the run ends inside an outage.
	sc.batches = sc.batches[:len(sc.batches)-1]
	return sc
}

// runScenario feeds every batch through the client in order, failing the
// test if any batch is lost, and returns the concatenated event stream.
func runScenario(t *testing.T, c *placemonclient.Client, sc *chaosScenario) []placemonclient.Event {
	t.Helper()
	ctx := context.Background()
	var events []placemonclient.Event
	for i, b := range sc.batches {
		res, err := c.ReportObservations(ctx, b)
		if err != nil {
			t.Fatalf("batch %d/%d lost despite retries: %v", i+1, len(sc.batches), err)
		}
		events = append(events, res.Events...)
	}
	return events
}

// chaosServer stands a placemond up behind a fault-injecting listener and
// returns its base URL plus a shutdown func that cancels Serve and
// reports its error.
func chaosServer(t *testing.T, sc *chaosScenario, inj *faultinject.Injector) (*placemon.Server, string, func() error) {
	t.Helper()
	srv, err := placemon.NewServer(sc.nw, sc.doc, placemon.ServerConfig{
		RequestTimeout: 10 * time.Second,
		DrainTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, faultinject.NewListener(ln, inj)) }()
	shutdown := func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			t.Fatalf("server never drained")
			return nil
		}
	}
	return srv, "http://" + ln.Addr().String(), shutdown
}

func retryingClient(t *testing.T, url string, inj *faultinject.Injector, maxAttempts int) *placemonclient.Client {
	t.Helper()
	var transport http.RoundTripper = &http.Transport{DisableKeepAlives: false}
	if inj != nil {
		transport = faultinject.NewTransport(transport, inj)
	}
	c, err := placemonclient.New(placemonclient.Config{
		BaseURL:           url,
		HTTPClient:        &http.Client{Transport: transport},
		MaxAttempts:       maxAttempts,
		BaseBackoff:       2 * time.Millisecond,
		MaxBackoff:        30 * time.Millisecond,
		PerAttemptTimeout: 5 * time.Second,
		BreakerThreshold:  -1, // the soak wants retries to grind through, not fail fast
		Seed:              99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosSoak is the acceptance run for the resilience layer: the same
// deterministic observation timeline is played (a) against a clean
// in-process server and (b) through a seeded fault injector that drops,
// duplicates, holds, resets, delays, and 5xx-flaps deliveries on both
// sides of a real TCP stack. With the retrying client and the idempotent
// server the two event streams must be identical; the diagnosis must
// still localize the final failure; and (c) the same hostile run with
// retries disabled must demonstrably diverge — proving the guarantee
// comes from the resilience layer, not from luck.
func TestChaosSoak(t *testing.T) {
	cycles := 3
	if testing.Short() {
		cycles = 1
	}
	sc := buildChaosScenario(t, cycles)

	// (a) Fault-free reference run, in process.
	refSrv, err := placemon.NewServer(sc.nw, sc.doc, placemon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	ref := httptest.NewServer(refSrv.Handler())
	defer ref.Close()
	want := runScenario(t, retryingClient(t, ref.URL, nil, 1), sc)
	if len(want) == 0 {
		t.Fatalf("reference run produced no events; scenario is broken")
	}

	// (b) Chaos run: same timeline through the injector, with retries.
	inj, err := faultinject.New(chaosPolicy(4242))
	if err != nil {
		t.Fatal(err)
	}
	srv, url, shutdown := chaosServer(t, sc, inj)
	client := retryingClient(t, url, inj, 12)
	got := runScenario(t, client, sc)

	// The tentpole invariant under hostile delivery: the incremental
	// rolling diagnosis is still bit-identical to a from-scratch
	// recompute after the whole fault-laden timeline.
	if err := srv.VerifyIncremental(); err != nil {
		t.Fatalf("incremental diagnosis diverged after chaos run: %v", err)
	}
	if err := refSrv.VerifyIncremental(); err != nil {
		t.Fatalf("incremental diagnosis diverged on the fault-free reference: %v", err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos event stream diverged from fault-free run:\n got %d events: %+v\nwant %d events: %+v",
			len(got), got, len(want), want)
	}
	counts := inj.Counts()
	t.Logf("injected faults: %v", counts)
	if inj.Total() == 0 {
		t.Fatalf("no faults injected; the soak proved nothing")
	}
	if testing.Short() {
		// The one-cycle smoke run is too brief to guarantee every rare
		// kind a turn; a diverse handful is evidence enough.
		if len(counts) < 3 {
			t.Errorf("only %d fault kinds fired in short mode (counts %v)", len(counts), counts)
		}
	} else {
		for _, kind := range []faultinject.Kind{
			faultinject.KindDrop, faultinject.KindDuplicate, faultinject.KindReset,
			faultinject.KindFlap, faultinject.KindHold,
		} {
			if counts[kind] == 0 {
				t.Errorf("fault kind %q never fired; soak coverage incomplete (counts %v)", kind, counts)
			}
		}
	}

	// The timeline ends mid-outage: the diagnosis must converge on the
	// injected node through the same hostile network.
	diag, err := client.Diagnosis(context.Background())
	if err != nil {
		t.Fatalf("diagnosis through chaos: %v", err)
	}
	if !diag.InOutage {
		t.Fatalf("not in outage at end of timeline")
	}
	if diag.Diagnosis == nil {
		t.Fatalf("no diagnosis served: %+v", diag)
	}
	found := false
	for _, cand := range diag.Diagnosis.Candidates {
		for _, node := range cand {
			if node == sc.lastFail {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("failed node %d not among candidates %v", sc.lastFail, diag.Diagnosis.Candidates)
	}

	// (b, continued) Graceful drain while fault-laden traffic is still
	// arriving: hammer the server from several goroutines and shut down
	// mid-flight. Serve must return nil (clean drain), not a timeout.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hammer := retryingClient(t, url, inj, 3)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once the server starts refusing.
				_, _ = hammer.ReportObservations(context.Background(), placemonclient.ObservationBatch{
					Time:    float64(1000 + i),
					Reports: []placemonclient.Report{{Connection: w % 4, Up: i%2 == 0}},
				})
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let the hammers land mid-drain
	if err := shutdown(); err != nil {
		t.Fatalf("drain under active fault load: %v", err)
	}
	close(stop)
	wg.Wait()

	// (c) Control: same policy, no retries. Lost batches stay lost, so
	// the event stream must diverge — the resilience layer, not luck, is
	// what made (b) exact.
	injNoRetry, err := faultinject.New(chaosPolicy(4242))
	if err != nil {
		t.Fatal(err)
	}
	_, url2, shutdown2 := chaosServer(t, sc, injNoRetry)
	naive := retryingClient(t, url2, injNoRetry, 1)
	var gotNaive []placemonclient.Event
	lost := 0
	for _, b := range sc.batches {
		res, err := naive.ReportObservations(context.Background(), b)
		if err != nil {
			lost++
			continue
		}
		gotNaive = append(gotNaive, res.Events...)
	}
	if err := shutdown2(); err != nil {
		t.Fatalf("no-retry server drain: %v", err)
	}
	if lost == 0 {
		t.Fatalf("no-retry run lost nothing; fault policy too tame to prove anything")
	}
	if reflect.DeepEqual(gotNaive, want) {
		t.Fatalf("no-retry run matched the fault-free stream despite losing %d batches", lost)
	}
	t.Logf("no-retry control: %d/%d batches lost, %d/%d events seen",
		lost, len(sc.batches), len(gotNaive), len(want))
}

// TestChaosSoakHardRestart is the durability half of the soak: the same
// deterministic timeline runs against a WAL-backed placemond that is
// killed mid-soak without drain or snapshot (Abort), rebooted from the
// log tail, and fed the rest of the timeline — all through the same
// seeded fault injector. The merged pre-crash + post-restart event
// stream must equal the fault-free reference, the dedup window must
// survive the crash (a retried pre-crash batch replays its original
// ack), and the log must fsck clean after the final graceful close.
func TestChaosSoakHardRestart(t *testing.T) {
	cycles := 2
	if testing.Short() {
		cycles = 1
	}
	sc := buildChaosScenario(t, cycles)
	// Pin batch IDs so the test can re-send a pre-crash batch verbatim
	// and watch the recovered dedup window replay it.
	for i := range sc.batches {
		sc.batches[i].BatchID = fmt.Sprintf("chaos-restart-%d", i)
	}

	// Fault-free reference run, in process, no WAL.
	refSrv, err := placemon.NewServer(sc.nw, sc.doc, placemon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	ref := httptest.NewServer(refSrv.Handler())
	defer ref.Close()
	want := runScenario(t, retryingClient(t, ref.URL, nil, 1), sc)
	if len(want) == 0 {
		t.Fatalf("reference run produced no events; scenario is broken")
	}

	// First life: WAL-backed, behind the fault injector.
	dir := t.TempDir()
	walCfg := placemon.ServerConfig{WALDir: dir}
	srv1, err := placemon.NewServer(sc.nw, sc.doc, walCfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.New(chaosPolicy(7331))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := retryingClient(t, ts1.URL, inj, 12)
	half := len(sc.batches) / 2
	var got []placemonclient.Event
	var lastAck *placemonclient.IngestResult
	for i, b := range sc.batches[:half] {
		res, err := c1.ReportObservations(context.Background(), b)
		if err != nil {
			t.Fatalf("batch %d lost before the crash: %v", i, err)
		}
		got = append(got, res.Events...)
		lastAck = res
	}

	// Before the kill, the first life's incremental diagnosis must still
	// match a from-scratch recompute.
	if err := srv1.VerifyIncremental(); err != nil {
		t.Fatalf("incremental diagnosis diverged before the crash: %v", err)
	}

	// Hard kill: no drain, no final snapshot. Recovery has only the
	// snapshotless log tail to work from.
	srv1.Abort()
	ts1.Close()

	// Second life: reboot from the same directory.
	srv2, err := placemon.NewServer(sc.nw, sc.doc, walCfg)
	if err != nil {
		t.Fatalf("recovery boot after hard kill: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := retryingClient(t, ts2.URL, inj, 12)

	// The dedup window crossed the crash: retrying the last pre-crash
	// batch replays its original ack instead of double-applying it.
	dup, err := c2.ReportObservations(context.Background(), sc.batches[half-1])
	if err != nil {
		t.Fatalf("post-restart duplicate of batch %d: %v", half-1, err)
	}
	if !dup.Replayed {
		t.Fatalf("post-restart duplicate not flagged Placemond-Replayed")
	}
	if !reflect.DeepEqual(dup.Events, lastAck.Events) {
		t.Fatalf("replayed ack diverged from the pre-crash original:\n got %+v\nwant %+v",
			dup.Events, lastAck.Events)
	}

	for i, b := range sc.batches[half:] {
		res, err := c2.ReportObservations(context.Background(), b)
		if err != nil {
			t.Fatalf("batch %d lost after the restart: %v", half+i, err)
		}
		got = append(got, res.Events...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged pre-crash + post-restart event stream diverged from fault-free run:\n got %d events: %+v\nwant %d events: %+v",
			len(got), got, len(want), want)
	}
	if inj.Total() == 0 {
		t.Fatalf("no faults injected; the restart soak proved nothing")
	}
	t.Logf("injected faults across both lives: %v", inj.Counts())

	// The timeline still ends mid-outage; the recovered daemon must
	// localize the injected node.
	diag, err := c2.Diagnosis(context.Background())
	if err != nil {
		t.Fatalf("diagnosis after restart: %v", err)
	}
	if !diag.InOutage || diag.Diagnosis == nil {
		t.Fatalf("no outage diagnosis after restart: %+v", diag)
	}
	found := false
	for _, cand := range diag.Diagnosis.Candidates {
		for _, node := range cand {
			if node == sc.lastFail {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("failed node %d not among candidates %v", sc.lastFail, diag.Diagnosis.Candidates)
	}

	// The recovered server rebuilt its incremental state from the log
	// tail and then absorbed the second half of the timeline; it too must
	// agree with a from-scratch recompute.
	if err := srv2.VerifyIncremental(); err != nil {
		t.Fatalf("incremental diagnosis diverged after log-tail recovery: %v", err)
	}

	// Graceful close snapshots; the log must fsck clean afterwards.
	if err := srv2.Close(); err != nil {
		t.Fatalf("final snapshot on close: %v", err)
	}
	rep, err := wal.Check(dir, false)
	if err != nil {
		t.Fatalf("fsck after clean close: %v", err)
	}
	if rep.Torn {
		t.Fatalf("log torn after clean close: %+v", rep)
	}
}
